// Package core implements the Chameleon index (Section III): a tree of
// precise linear inner nodes (Eq. 1) over Error Bounded Hashing leaves, bulk
// loaded by the MARL construction of Section IV (DARE shapes the upper h−1
// levels, TSMDP refines below) and kept healthy under updates by the
// Interval-Lock-guarded background retraining of Section V.
//
// Concurrency model (matching the paper's): one foreground thread issues
// queries and updates sequentially; one background goroutine retrains
// level-h subtrees. The two synchronize only through per-interval locks, so
// retraining never blocks operations on other intervals.
package core

import (
	"errors"
	"math"
	"sync/atomic"
	"time"

	"chameleon/internal/ebh"
	"chameleon/internal/ilock"
	"chameleon/internal/index"
	"chameleon/internal/rl"
)

// noGate marks inner nodes whose children are not level-h retraining units.
const noGate = ^uint64(0)

// Config controls construction and retraining. The zero value is usable:
// Defaults fills in the paper's Table IV settings with the deterministic
// cost-model policies.
type Config struct {
	// Name overrides the display name (defaults to "Chameleon").
	Name string
	// Tau is the EBH collision target τ (default 0.45).
	Tau float64
	// Alpha is the EBH hash factor α (default 131).
	Alpha float64
	// L is the DARE parameter-matrix row width (default 64).
	L int
	// MaxLowerDepth bounds the TSMDP refinement recursion below level h
	// (default 3).
	MaxLowerDepth int
	// Dare chooses the upper-level parameters. Nil selects the analytic
	// CostDARE policy.
	Dare rl.DAREPolicy
	// ReconstructDare is the policy used for runtime full reconstructions.
	// The paper's online DARE invocation is cheap trained-critic inference;
	// the deterministic default here is a reduced-budget CostDARE so
	// in-path rebuilds stay bounded. Nil selects that default; set it to a
	// trained agent for the paper-faithful variant.
	ReconstructDare rl.DAREPolicy
	// Policy decides lower-level fanouts (TSMDP's role). Nil means level-h
	// nodes become leaves directly (the ChaDA ablation).
	Policy rl.FanoutPolicy
	// RetrainEvery is the background retraining period (the paper evaluates
	// 10s). Zero disables the retrainer; it can still be started manually.
	RetrainEvery time.Duration
	// LightThreshold is the updates/keys ratio that triggers a leaf-level
	// retrain of a subtree (capacity restore, no sorting). Default 0.25.
	LightThreshold float64
	// StructThreshold is the ratio that triggers a structural rebuild of the
	// subtree via the fanout policy. Default 1.0.
	StructThreshold float64
	// ReconstructThreshold triggers a full DARE reconstruction once
	// cumulative updates since the last build exceed this multiple of the
	// built size (Section V, Limitation 1: "when the number of updated data
	// reaches a certain threshold, ... DARE is triggered to reconstruct the
	// overall index structure"). Zero selects the default of 4 (geometric
	// rebuilds, amortized O(1) per update); a negative value disables it.
	ReconstructThreshold float64
	// Seed feeds the analytic policies' genetic algorithm.
	Seed uint64
}

// Defaults returns cfg with unset fields filled in.
func (cfg Config) Defaults() Config {
	if cfg.Name == "" {
		cfg.Name = "Chameleon"
	}
	if cfg.Tau <= 0 || cfg.Tau >= 1 {
		cfg.Tau = ebh.DefaultTau
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = ebh.DefaultAlpha
	}
	if cfg.L <= 0 {
		cfg.L = 64
	}
	if cfg.MaxLowerDepth <= 0 {
		cfg.MaxLowerDepth = 3
	}
	if cfg.LightThreshold <= 0 {
		cfg.LightThreshold = 0.25
	}
	if cfg.StructThreshold <= 0 {
		cfg.StructThreshold = 1.0
	}
	if cfg.ReconstructThreshold == 0 {
		cfg.ReconstructThreshold = 4.0
	}
	if cfg.ReconstructDare == nil {
		dcfg := rl.DefaultDAREConfig()
		dcfg.Seed = cfg.Seed
		dcfg.GA.Generations = 8
		dcfg.GA.Pop = 10
		dcfg.SampleCap = 1 << 14
		cfg.ReconstructDare = rl.NewCostDARE(dcfg)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// node is one tree node: an EBH leaf when leaf is non-nil, otherwise an
// inner node with the interpolation model of Eq. (1).
type node struct {
	lo, hi   uint64
	fanout   int
	scale    float64 // cached Eq. (1) factor: fanout/(hi−lo)
	children []*node
	leaf     *ebh.Node
	// gateBase is the first interval-lock ID of this node's children when
	// they are level-h retraining units; noGate otherwise.
	gateBase uint64
}

// newInner builds an inner node with its routing scale cached. The scale
// reproduces costmodel.ChildIndex exactly (same float expression), so
// construction-time partitioning and lookup-time routing always agree.
func newInner(lo, hi uint64, fanout int) *node {
	n := &node{lo: lo, hi: hi, fanout: fanout, gateBase: noGate, children: make([]*node, fanout)}
	if span := hi - lo; span > 0 {
		n.scale = float64(fanout) / float64(span)
	}
	return n
}

// gate is the retraining bookkeeping for one level-h subtree.
type gate struct {
	id      uint64
	parent  *node
	slot    int
	lo, hi  uint64
	updates atomic.Int64 // inserts+deletes since the last retrain
	keys    atomic.Int64 // key count at the last (re)build
}

// Index is the Chameleon index. Construct with New; it implements the
// index.Index, index.RangeIndex, and index.StatsProvider interfaces.
type Index struct {
	cfg   Config
	env   rl.Env
	root  *node
	h     int
	gates []*gate
	locks *ilock.Table
	count int

	// Full-reconstruction bookkeeping (foreground only).
	baseN           int // key count at the last full (re)build
	updatesSince    int // inserts+deletes since the last full (re)build
	reconstructions int
	lastPeriod      time.Duration // retrainer period to restore after a rebuild

	// Retrainer lifecycle and accounting (Fig. 14 / Fig. 15). active gates
	// the foreground interval locking: with no retrainer goroutine there is
	// no concurrency, so the query path skips the lock CAS entirely.
	active       atomic.Bool
	stop         chan struct{}
	done         chan struct{}
	retrains     atomic.Int64
	retrainNanos atomic.Int64
}

var _ index.RangeIndex = (*Index)(nil)
var _ index.StatsProvider = (*Index)(nil)

// New creates an empty index.
func New(cfg Config) *Index {
	cfg = cfg.Defaults()
	env := rl.DefaultEnv()
	env.Tau, env.Alpha = cfg.Tau, cfg.Alpha
	ix := &Index{cfg: cfg, env: env}
	ix.reset(nil, nil)
	return ix
}

// NewChaDATS is the full system of Table V: DARE plus TSMDP refinement. A
// nil policy selects the analytic equivalents (DESIGN.md §4).
func NewChaDATS(dare rl.DAREPolicy, policy rl.FanoutPolicy) *Index {
	cfg := Config{Name: "ChaDATS", Dare: dare, Policy: policy}
	if cfg.Dare == nil {
		cfg.Dare = rl.NewCostDARE(rl.DefaultDAREConfig())
	}
	if cfg.Policy == nil {
		cfg.Policy = rl.NewCostPolicy(rl.DefaultEnv())
	}
	return New(cfg)
}

// NewChaDA is the Table V ablation with DARE but no TSMDP: level-h nodes
// become EBH leaves directly.
func NewChaDA(dare rl.DAREPolicy) *Index {
	cfg := Config{Name: "ChaDA", Dare: dare}
	if cfg.Dare == nil {
		cfg.Dare = rl.NewCostDARE(rl.DefaultDAREConfig())
	}
	return New(cfg)
}

// NewChaB is the Table V ablation with EBH only (no DARE, no TSMDP): a fixed
// upper structure over hash leaves.
func NewChaB() *Index {
	return New(Config{
		Name:   "ChaB",
		Dare:   rl.FixedDARE{Root: 1 << 10},
		Policy: rl.FixedFanout{F: 32, MinSplit: 4096},
	})
}

// Name implements index.Index.
func (ix *Index) Name() string { return ix.cfg.Name }

// Len implements index.Index.
func (ix *Index) Len() int { return ix.count }

// Height reports the number of levels on the deepest path (root = 1).
func (ix *Index) Height() int {
	var depth func(n *node) int
	depth = func(n *node) int {
		if n.leaf != nil {
			return 1
		}
		best := 0
		for _, c := range n.children {
			if d := depth(c); d > best {
				best = d
			}
		}
		return 1 + best
	}
	return depth(ix.root)
}

// reset replaces the structure with a fresh one over the given sorted keys.
func (ix *Index) reset(keys, vals []uint64) {
	ix.gates = nil
	ix.baseN = len(keys)
	ix.updatesSince = 0
	if len(keys) == 0 {
		ix.root = &node{
			lo: 0, hi: math.MaxUint64, fanout: 1, gateBase: noGate,
			leaf: ebh.New(0, math.MaxUint64, 16, ix.cfg.Tau, ix.cfg.Alpha),
		}
		ix.h = 2
		ix.locks = ilock.New(1)
		ix.count = 0
		return
	}
	ix.count = len(keys)
	ix.h = heightFor(len(keys))
	ix.root = ix.build(keys, vals)
	n := len(ix.gates)
	if n == 0 {
		n = 1
	}
	ix.locks = ilock.New(n)
}

// heightFor is the paper's lower bound on tree height,
// ⌈log_{2^10}(|D|)⌉, floored at 2.
func heightFor(n int) int {
	h := int(math.Ceil(math.Log2(float64(n)) / 10))
	if h < 2 {
		h = 2
	}
	return h
}

// ErrUnsortedKeys is returned by BulkLoad when the key slice is not strictly
// ascending.
var ErrUnsortedKeys = errors.New("core: bulk-load keys must be sorted and unique")
