// Package core implements the Chameleon index (Section III): a tree of
// precise linear inner nodes (Eq. 1) over Error Bounded Hashing leaves, bulk
// loaded by the MARL construction of Section IV (DARE shapes the upper h−1
// levels, TSMDP refines below) and kept healthy under updates by the
// Interval-Lock-guarded background retraining of Section V.
//
// Concurrency model (a deliberate departure from the paper's single
// foreground thread): any number of goroutines may call Lookup, Range,
// Insert, and Delete concurrently, alongside the background retraining
// goroutine. Lookup/Range take shared read locks on the level-h intervals
// they cross, Insert/Delete take exclusive write locks, and the retrainer
// takes exclusive retrain locks — so readers share intervals, writers
// serialize per interval, and retraining never blocks operations on other
// intervals. The whole structure (root, gate registry, lock table) is an
// atomically swapped snapshot, so full reconstructions build off-line and
// publish with a single pointer store; paths that never cross a gate (an
// empty index, degenerate upper levels) are guarded by a dedicated fallback
// interval so no leaf access is ever unlocked. BulkLoad, Reconstruct, and
// ReadFrom serialize through a lifecycle mutex and briefly exclude writers
// while swapping; readers are never blocked by a swap.
package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/ebh"
	"chameleon/internal/ilock"
	"chameleon/internal/index"
	"chameleon/internal/rl"
)

// noGate marks inner nodes whose children are not level-h retraining units.
const noGate = ^uint64(0)

// Config controls construction and retraining. The zero value is usable:
// Defaults fills in the paper's Table IV settings with the deterministic
// cost-model policies.
type Config struct {
	// Name overrides the display name (defaults to "Chameleon").
	Name string
	// Tau is the EBH collision target τ (default 0.45).
	Tau float64
	// Alpha is the EBH hash factor α (default 131).
	Alpha float64
	// L is the DARE parameter-matrix row width (default 64).
	L int
	// MaxLowerDepth bounds the TSMDP refinement recursion below level h
	// (default 3).
	MaxLowerDepth int
	// Dare chooses the upper-level parameters. Nil selects the analytic
	// CostDARE policy.
	Dare rl.DAREPolicy
	// ReconstructDare is the policy used for runtime full reconstructions.
	// The paper's online DARE invocation is cheap trained-critic inference;
	// the deterministic default here is a reduced-budget CostDARE so
	// in-path rebuilds stay bounded. Nil selects that default; set it to a
	// trained agent for the paper-faithful variant.
	ReconstructDare rl.DAREPolicy
	// Policy decides lower-level fanouts (TSMDP's role). Nil means level-h
	// nodes become leaves directly (the ChaDA ablation).
	Policy rl.FanoutPolicy
	// RetrainEvery is the background retraining period (the paper evaluates
	// 10s). Zero disables the retrainer; it can still be started manually.
	RetrainEvery time.Duration
	// LightThreshold is the updates/keys ratio that triggers a leaf-level
	// retrain of a subtree (capacity restore, no sorting). Default 0.25.
	LightThreshold float64
	// StructThreshold is the ratio that triggers a structural rebuild of the
	// subtree via the fanout policy. Default 1.0.
	StructThreshold float64
	// ReconstructThreshold triggers a full DARE reconstruction once
	// cumulative updates since the last build exceed this multiple of the
	// built size (Section V, Limitation 1: "when the number of updated data
	// reaches a certain threshold, ... DARE is triggered to reconstruct the
	// overall index structure"). Zero selects the default of 4 (geometric
	// rebuilds, amortized O(1) per update); a negative value disables it.
	ReconstructThreshold float64
	// Seed feeds the analytic policies' genetic algorithm.
	Seed uint64
	// Workers bounds the goroutines used by parallel bulk load and snapshot
	// recovery. Zero means one per available CPU; 1 forces the serial path
	// (bit-identical results either way — parallelism only reorders work
	// across disjoint key ranges, never what is computed).
	Workers int
	// LockedReads disables the versioned optimistic read path: every Lookup
	// and Range takes the shared interval lock, as before DESIGN.md §13.
	// Intended for benchmarking the locked baseline and as an escape hatch.
	LockedReads bool
}

// Defaults returns cfg with unset fields filled in.
func (cfg Config) Defaults() Config {
	if cfg.Name == "" {
		cfg.Name = "Chameleon"
	}
	if cfg.Tau <= 0 || cfg.Tau >= 1 {
		cfg.Tau = ebh.DefaultTau
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = ebh.DefaultAlpha
	}
	if cfg.L <= 0 {
		cfg.L = 64
	}
	if cfg.MaxLowerDepth <= 0 {
		cfg.MaxLowerDepth = 3
	}
	if cfg.LightThreshold <= 0 {
		cfg.LightThreshold = 0.25
	}
	if cfg.StructThreshold <= 0 {
		cfg.StructThreshold = 1.0
	}
	if cfg.ReconstructThreshold == 0 {
		cfg.ReconstructThreshold = 4.0
	}
	if cfg.ReconstructDare == nil {
		dcfg := rl.DefaultDAREConfig()
		dcfg.Seed = cfg.Seed
		dcfg.GA.Generations = 8
		dcfg.GA.Pop = 10
		dcfg.SampleCap = 1 << 14
		cfg.ReconstructDare = rl.NewCostDARE(dcfg)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// node is one tree node: an EBH leaf when leaf is non-nil, otherwise an
// inner node with the interpolation model of Eq. (1). Node shape is
// immutable after construction except for gate child slots, which the
// retrainer swaps under that interval's exclusive Retraining-Lock.
type node struct {
	lo, hi   uint64
	fanout   int
	scale    float64 // cached Eq. (1) factor: fanout/(hi−lo)
	children []*node
	leaf     *ebh.Node
	// gateBase is the first interval-lock ID of this node's children when
	// they are level-h retraining units; noGate otherwise.
	gateBase uint64
}

// newInner builds an inner node with its routing scale cached. The scale
// reproduces costmodel.ChildIndex exactly (same float expression), so
// construction-time partitioning and lookup-time routing always agree.
func newInner(lo, hi uint64, fanout int) *node {
	n := &node{lo: lo, hi: hi, fanout: fanout, gateBase: noGate, children: make([]*node, fanout)}
	if span := hi - lo; span > 0 {
		n.scale = float64(fanout) / float64(span)
	}
	return n
}

// gate is the retraining bookkeeping for one level-h subtree.
type gate struct {
	id      uint64
	parent  *node
	slot    int
	lo, hi  uint64
	updates atomic.Int64 // inserts+deletes since the last retrain
	keys    atomic.Int64 // key count at the last (re)build
}

// tree is one immutable-shape snapshot of the index structure: the root,
// the gate registry, the interval-lock table sized for it, and the build
// height. Everything that must stay mutually consistent across a full
// rebuild swaps together behind one atomic pointer, so a concurrent reader
// can never pair a new root with a stale lock table.
type tree struct {
	root  *node
	gates []*gate
	locks *ilock.Table
	h     int
}

// fallbackID is the interval-lock slot guarding every path that never
// crosses a gate (empty index, degenerate upper levels). The lock table is
// always sized len(gates)+1 so this slot is real and unshared.
func (t *tree) fallbackID() uint64 { return uint64(len(t.gates)) }

// Index is the Chameleon index. Construct with New; it implements the
// index.Index, index.RangeIndex, and index.StatsProvider interfaces, and
// every method on it is safe for concurrent use.
type Index struct {
	cfg  Config
	env  rl.Env
	tree atomic.Pointer[tree]

	count atomic.Int64 // stored keys

	// Full-reconstruction bookkeeping.
	baseN           atomic.Int64 // key count at the last full (re)build
	updatesSince    atomic.Int64 // inserts+deletes since the last full (re)build
	reconstructions atomic.Int64
	reconstructing  atomic.Bool // single in-flight threshold-triggered rebuild

	// rebuildMu orders structure swaps against mutators: Insert/Delete and
	// RetrainPass hold it shared, BulkLoad/Reconstruct/ReadFrom hold it
	// exclusively while (collecting and) installing a new tree. Read-only
	// operations never take it — a reader on the pre-swap snapshot sees
	// identical contents, because writers are excluded for the whole
	// collect-to-swap window.
	rebuildMu sync.RWMutex

	// lifecycle guards the retrainer goroutine state (stop/done/lastPeriod)
	// and serializes StartRetrainer/StopRetrainer/BulkLoad/Reconstruct/
	// ReadFrom against each other, so concurrent Start/Stop/Close calls and
	// a Close racing a BulkLoad are safe.
	lifecycle    sync.Mutex
	stop         chan struct{}
	done         chan struct{}
	lastPeriod   time.Duration // retrainer period to restore after a rebuild
	retrains     atomic.Int64
	retrainNanos atomic.Int64

	// retrainPanics counts background retrain/reconstruct passes that
	// panicked and were recovered; the retrainer backs off and retries.
	retrainPanics atomic.Int64

	// retrainPaused gates background maintenance without tearing the
	// goroutine down: while set, timer-driven retrain passes and
	// threshold-triggered full reconstructions are skipped so they stop
	// competing with an overloaded foreground write path. Explicit
	// RetrainPass calls are not gated — a caller asking directly gets a pass.
	retrainPaused atomic.Bool

	// gcache is the model cache of DESIGN.md §13: fully resolved hot-key
	// answers, each validated against its interval's seqlock version on hit.
	// gcand holds each slot's candidate key for two-touch admission: a key
	// is only cached (allocated + published) after its second sighting, so
	// cold uniform streams never pay per-lookup allocation.
	gcache [gcSlots]atomic.Pointer[gcEntry]
	gcand  [gcSlots]atomic.Uint64

	// fallbackReads counts lookups that exhausted their optimistic retries
	// and took the shared lock. Optimistic hits are deliberately not counted
	// (a shared hit counter would bounce between cores exactly like the lock
	// word this path removes).
	fallbackReads atomic.Uint64
}

var _ index.RangeIndex = (*Index)(nil)
var _ index.StatsProvider = (*Index)(nil)

// New creates an empty index.
func New(cfg Config) *Index {
	cfg = cfg.Defaults()
	env := rl.DefaultEnv()
	env.Tau, env.Alpha = cfg.Tau, cfg.Alpha
	ix := &Index{cfg: cfg, env: env}
	ix.installTree(ix.buildTree(nil, nil), 0)
	return ix
}

// NewChaDATS is the full system of Table V: DARE plus TSMDP refinement. A
// nil policy selects the analytic equivalents (DESIGN.md §4).
func NewChaDATS(dare rl.DAREPolicy, policy rl.FanoutPolicy) *Index {
	cfg := Config{Name: "ChaDATS", Dare: dare, Policy: policy}
	if cfg.Dare == nil {
		cfg.Dare = rl.NewCostDARE(rl.DefaultDAREConfig())
	}
	if cfg.Policy == nil {
		cfg.Policy = rl.NewCostPolicy(rl.DefaultEnv())
	}
	return New(cfg)
}

// NewChaDA is the Table V ablation with DARE but no TSMDP: level-h nodes
// become EBH leaves directly.
func NewChaDA(dare rl.DAREPolicy) *Index {
	cfg := Config{Name: "ChaDA", Dare: dare}
	if cfg.Dare == nil {
		cfg.Dare = rl.NewCostDARE(rl.DefaultDAREConfig())
	}
	return New(cfg)
}

// NewChaB is the Table V ablation with EBH only (no DARE, no TSMDP): a fixed
// upper structure over hash leaves.
func NewChaB() *Index {
	return New(Config{
		Name:   "ChaB",
		Dare:   rl.FixedDARE{Root: 1 << 10},
		Policy: rl.FixedFanout{F: 32, MinSplit: 4096},
	})
}

// Name implements index.Index.
func (ix *Index) Name() string { return ix.cfg.Name }

// Len implements index.Index.
func (ix *Index) Len() int { return int(ix.count.Load()) }

// Height reports the number of levels on the deepest path (root = 1).
func (ix *Index) Height() int {
	var depth func(n *node) int
	depth = func(n *node) int {
		if n.leaf != nil {
			return 1
		}
		best := 0
		for _, c := range n.children {
			if d := depth(c); d > best {
				best = d
			}
		}
		return 1 + best
	}
	return depth(ix.tree.Load().root)
}

// buildTree constructs a fresh snapshot over the given sorted keys. It does
// not publish it; callers install via installTree under the appropriate
// locks.
func (ix *Index) buildTree(keys, vals []uint64) *tree {
	if len(keys) == 0 {
		return &tree{
			root: &node{
				lo: 0, hi: math.MaxUint64, fanout: 1, gateBase: noGate,
				leaf: ebh.New(0, math.MaxUint64, 16, ix.cfg.Tau, ix.cfg.Alpha),
			},
			h:     2,
			locks: ilock.New(1),
		}
	}
	t := &tree{h: heightFor(len(keys))}
	t.root = ix.build(t, keys, vals)
	t.locks = ilock.New(len(t.gates) + 1)
	return t
}

// installTree publishes a snapshot and resets the per-build counters. The
// caller must hold rebuildMu exclusively (or be the constructor, before the
// index is shared). Before publication it enforces the lock-table sizing
// invariant: every snapshot carries a table of len(gates)+1 slots, so
// distinct live interval IDs never alias by modulo (aliased IDs would
// false-conflict — two unrelated hot intervals serializing on one slot).
func (ix *Index) installTree(t *tree, n int) {
	if t.locks == nil || t.locks.Len() < len(t.gates)+1 {
		t.locks = ilock.New(len(t.gates) + 1)
	}
	ix.tree.Store(t)
	ix.count.Store(int64(n))
	ix.baseN.Store(int64(n))
	ix.updatesSince.Store(0)
}

// heightFor is the paper's lower bound on tree height,
// ⌈log_{2^10}(|D|)⌉, floored at 2.
func heightFor(n int) int {
	h := int(math.Ceil(math.Log2(float64(n)) / 10))
	if h < 2 {
		h = 2
	}
	return h
}

// ErrUnsortedKeys is returned by BulkLoad when the key slice is not strictly
// ascending.
var ErrUnsortedKeys = errors.New("core: bulk-load keys must be sorted and unique")

// ErrMismatchedValues is returned by BulkLoad when a value slice is supplied
// whose length differs from the key slice's.
var ErrMismatchedValues = errors.New("core: bulk-load values must match keys in length")
