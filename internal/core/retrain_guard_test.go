package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"chameleon/internal/dataset"
	"chameleon/internal/index"
)

// TestRetrainerSurvivesPanics injects panics into the background retraining
// pass and verifies graceful degradation: the goroutine recovers, counts the
// failure, backs off, and — once the fault clears — resumes retraining. The
// interval locks must come back released, so foreground writes keep working
// throughout and afterwards.
func TestRetrainerSurvivesPanics(t *testing.T) {
	keys := dataset.Generate(dataset.FACE, 30_000, 5)
	ix := fastIndex("Chameleon")
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}

	const faults = 3
	var calls atomic.Int64
	retrainFailpoint = func() {
		if calls.Add(1) <= faults {
			panic("injected retrain fault")
		}
	}
	ix.StartRetrainer(time.Millisecond)

	// Dirty some gates so post-fault passes have real work to do. FACE keys
	// are dense, so key+1 may already exist — duplicates are fine.
	for i := 0; i < len(keys); i += 2 {
		if err := ix.Insert(keys[i]+1, 1); err != nil && !errors.Is(err, index.ErrDuplicateKey) {
			t.Fatal(err)
		}
	}

	deadline := time.After(30 * time.Second)
	for ix.RetrainPanics() < faults || calls.Load() <= faults {
		select {
		case <-deadline:
			t.Fatalf("retrainer did not recover: %d panics, %d passes",
				ix.RetrainPanics(), calls.Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if !ix.RetrainerRunning() {
		t.Fatal("retrainer goroutine died")
	}

	ix.StopRetrainer()
	retrainFailpoint = nil

	// Every interval lock must be free again: a manual pass over all gates
	// acquires each Retraining-Lock and would deadlock on a stranded one.
	for i := 0; i < len(keys); i += 3 {
		if err := ix.Insert(keys[i]+2, 2); err != nil && !errors.Is(err, index.ErrDuplicateKey) {
			t.Fatal(err)
		}
	}
	ix.RetrainPass()
	if _, ok := ix.Lookup(keys[0]); !ok {
		t.Fatal("index unusable after recovered panics")
	}
}

// TestReconstructPanicReleasesLocks panics inside Reconstruct while the
// exclusive rebuild lock is held. The elected rebuilder's recover() must find
// rebuildMu released — a stranded lock would deadlock every later writer —
// and a later attempt (fault cleared) must complete a real reconstruction.
func TestReconstructPanicReleasesLocks(t *testing.T) {
	ix := fastIndex("Chameleon")
	ix.cfg.ReconstructThreshold = 0.5
	if err := ix.BulkLoad(dataset.Uniform(5_000, 3), nil); err != nil {
		t.Fatal(err)
	}

	var armed atomic.Bool
	armed.Store(true)
	reconstructFailpoint = func() {
		if armed.Load() {
			panic("injected reconstruct fault")
		}
	}
	defer func() { reconstructFailpoint = nil }()

	// Cross the threshold: the elected writer's reconstruction panics and is
	// recovered; the insert itself must still succeed.
	k := uint64(1 << 33)
	for ix.RetrainPanics() == 0 {
		if err := ix.Insert(k, k); err != nil && !errors.Is(err, index.ErrDuplicateKey) {
			t.Fatal(err)
		}
		k++
	}
	if got := ix.Reconstructions(); got != 0 {
		t.Fatalf("Reconstructions = %d during fault injection", got)
	}

	// The lock must be free: plain writes proceed, and with the fault
	// cleared the still-crossed threshold retries the rebuild and succeeds.
	armed.Store(false)
	for ix.Reconstructions() == 0 {
		if err := ix.Insert(k, k); err != nil && !errors.Is(err, index.ErrDuplicateKey) {
			t.Fatal(err)
		}
		k++
	}
	if _, ok := ix.Lookup(k - 1); !ok {
		t.Fatal("key lost across recovered reconstruction")
	}
}

// TestPauseRetrainerSkipsPasses pins the overload contract: while paused, the
// background loop runs no retrain work (the failpoint would record it), keeps
// its normal cadence (no backoff), and resumes doing real passes after
// ResumeRetrainer.
func TestPauseRetrainerSkipsPasses(t *testing.T) {
	keys := dataset.Generate(dataset.FACE, 30_000, 5)
	ix := fastIndex("Chameleon")
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	retrainFailpoint = func() { calls.Add(1) }
	defer func() { retrainFailpoint = nil }()

	ix.PauseRetrainer()
	if !ix.RetrainerPaused() {
		t.Fatal("RetrainerPaused = false after Pause")
	}
	ix.StartRetrainer(time.Millisecond)
	defer ix.StopRetrainer()
	time.Sleep(30 * time.Millisecond)
	if n := calls.Load(); n != 0 {
		t.Fatalf("paused retrainer ran %d passes, want 0", n)
	}

	ix.ResumeRetrainer()
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retrainer never resumed after ResumeRetrainer")
		}
		time.Sleep(time.Millisecond)
	}
}
