package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"chameleon/internal/ebh"
	"chameleon/internal/ilock"
)

// Persistence: WriteTo serializes the learned structure verbatim (tree shape,
// per-leaf slot layouts, gate positions) so a loaded index answers queries
// with the exact structure the MARL construction produced — no retraining on
// startup. Retraining state (drift counters) intentionally resets: a freshly
// loaded index has nothing to retrain yet.

// wireNode mirrors node for gob.
type wireNode struct {
	Lo, Hi   uint64
	Fanout   int
	GateBase uint64
	Leaf     []byte // non-nil for leaves (ebh encoding)
	Children []*wireNode
}

// wireIndex is the file form.
type wireIndex struct {
	Magic   string
	Version int
	Name    string
	Tau     float64
	Alpha   float64
	H       int
	Count   int
	BaseN   int
	Root    *wireNode
}

const (
	persistMagic   = "chameleon-index"
	persistVersion = 1
)

// WriteTo implements io.WriterTo: it serializes the index structure. Stop
// the retrainer and quiesce writers first — the snapshot walk is not taken
// under interval locks.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	t := ix.tree.Load()
	root, err := encodeNode(t.root)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: w}
	err = gob.NewEncoder(cw).Encode(wireIndex{
		Magic:   persistMagic,
		Version: persistVersion,
		Name:    ix.cfg.Name,
		Tau:     ix.cfg.Tau,
		Alpha:   ix.cfg.Alpha,
		H:       t.h,
		Count:   int(ix.count.Load()),
		BaseN:   int(ix.baseN.Load()),
		Root:    root,
	})
	return cw.n, err
}

// ReadFrom implements io.ReaderFrom: it replaces the index contents with a
// structure written by WriteTo. The receiver's construction policies are
// kept for future retraining/reconstruction. Any running retrainer is
// stopped; restarting it is the caller's choice (the public chameleon.Load
// restarts it per Options.RetrainEvery).
func (ix *Index) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	var w wireIndex
	if err := gob.NewDecoder(cr).Decode(&w); err != nil {
		return cr.n, err
	}
	if w.Magic != persistMagic {
		return cr.n, fmt.Errorf("core: not a chameleon index file")
	}
	if w.Version != persistVersion {
		return cr.n, fmt.Errorf("core: unsupported index file version %d", w.Version)
	}
	if w.Root == nil {
		return cr.n, fmt.Errorf("core: index file has no root")
	}
	root, err := decodeNode(w.Root)
	if err != nil {
		return cr.n, err
	}
	t := &tree{root: root, h: w.H}
	if err := rebuildGates(t); err != nil {
		return cr.n, err
	}
	ix.lifecycle.Lock()
	defer ix.lifecycle.Unlock()
	ix.stopRetrainerLocked()
	ix.cfg.Name = w.Name
	ix.cfg.Tau, ix.cfg.Alpha = w.Tau, w.Alpha
	ix.rebuildMu.Lock()
	ix.installTree(t, w.Count)
	ix.baseN.Store(int64(w.BaseN))
	ix.rebuildMu.Unlock()
	return cr.n, nil
}

func encodeNode(n *node) (*wireNode, error) {
	w := &wireNode{Lo: n.lo, Hi: n.hi, Fanout: n.fanout, GateBase: n.gateBase}
	if n.leaf != nil {
		blob, err := n.leaf.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.Leaf = blob
		return w, nil
	}
	w.Children = make([]*wireNode, len(n.children))
	for i, c := range n.children {
		cw, err := encodeNode(c)
		if err != nil {
			return nil, err
		}
		w.Children[i] = cw
	}
	return w, nil
}

func decodeNode(w *wireNode) (*node, error) {
	if w.Leaf != nil {
		leaf := new(ebh.Node)
		if err := leaf.UnmarshalBinary(w.Leaf); err != nil {
			return nil, err
		}
		return &node{lo: w.Lo, hi: w.Hi, fanout: 1, gateBase: noGate, leaf: leaf}, nil
	}
	if len(w.Children) != w.Fanout || w.Fanout < 1 {
		return nil, fmt.Errorf("core: corrupt inner node (fanout %d, %d children)",
			w.Fanout, len(w.Children))
	}
	n := newInner(w.Lo, w.Hi, w.Fanout)
	n.gateBase = w.GateBase
	for i, cw := range w.Children {
		c, err := decodeNode(cw)
		if err != nil {
			return nil, err
		}
		n.children[i] = c
	}
	return n, nil
}

// rebuildGates reconstructs the gate registry and lock table of a decoded
// tree from the persisted gateBase markers. Gate IDs must be dense (the
// builder assigns them sequentially); a corrupt file with inflated IDs is
// rejected rather than allocating an inflated registry.
func rebuildGates(t *tree) error {
	maxID := uint64(0)
	totalChildren := 0
	var scan func(n *node)
	var collect []func(gates []*gate)
	scan = func(n *node) {
		if n.leaf != nil {
			return
		}
		totalChildren += len(n.children)
		if n.gateBase != noGate {
			parent := n
			base := n.gateBase
			for j := range n.children {
				j := j
				child := n.children[j]
				id := base + uint64(j)
				if id+1 > maxID {
					maxID = id + 1
				}
				collect = append(collect, func(gates []*gate) {
					g := &gate{id: id, parent: parent, slot: j, lo: child.lo, hi: child.hi}
					g.keys.Store(int64(subtreeKeys(child)))
					gates[id] = g
				})
			}
		}
		for _, c := range n.children {
			scan(c)
		}
	}
	scan(t.root)
	if maxID > uint64(totalChildren) {
		return fmt.Errorf("core: corrupt index file: gate ID %d exceeds %d child slots",
			maxID, totalChildren)
	}
	gates := make([]*gate, maxID)
	for _, fn := range collect {
		fn(gates)
	}
	// A well-formed file has dense IDs; fill any hole with an inert gate so
	// the hot path never nil-derefs.
	for i, g := range gates {
		if g == nil {
			gates[i] = &gate{id: uint64(i)}
		}
	}
	t.gates = gates
	t.locks = ilock.New(len(gates) + 1)
	return nil
}

func subtreeKeys(n *node) int {
	if n.leaf != nil {
		return n.leaf.Len()
	}
	total := 0
	for _, c := range n.children {
		total += subtreeKeys(c)
	}
	return total
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// gobEncode writes a wireIndex with the given root for nd; tests use it to
// craft corrupted files.
func gobEncode(w io.Writer, root *wireNode, ix *Index) error {
	return gob.NewEncoder(w).Encode(wireIndex{
		Magic:   persistMagic,
		Version: persistVersion,
		Name:    ix.cfg.Name,
		Tau:     ix.cfg.Tau,
		Alpha:   ix.cfg.Alpha,
		H:       ix.tree.Load().h,
		Count:   int(ix.count.Load()),
		BaseN:   int(ix.baseN.Load()),
		Root:    root,
	})
}
