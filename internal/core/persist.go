package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"chameleon/internal/ebh"
	"chameleon/internal/ilock"
	"chameleon/internal/par"
)

// Persistence: WriteTo serializes the learned structure verbatim (tree shape,
// per-leaf slot layouts, gate positions) so a loaded index answers queries
// with the exact structure the MARL construction produced — no retraining on
// startup. Retraining state (drift counters) intentionally resets: a freshly
// loaded index has nothing to retrain yet.
//
// The file is a checksummed envelope around a gob payload:
//
//	[8]  magic "CHAMSNP2"
//	[4]  format version (little-endian)
//	[n]  gob(wireIndex)
//	[8]  payload length      ┐
//	[4]  CRC32C of payload   ├ footer
//	[8]  end magic "CHAMEND2"┘
//
// The footer turns every torn write, truncation, or bit flip into a clean
// decode error instead of a structurally-plausible-but-wrong index, which is
// what lets the checkpointer trust rename-based recovery: a snapshot either
// verifies end to end or is skipped in favor of the previous one.
//
// WriteTo is safe during live writes: it holds the rebuild lock shared (no
// structure swap mid-walk) and serializes each gate subtree under that
// interval's read lock, which also excludes the retrainer. The snapshot is
// consistent per interval — each leaf is an atomic cut, no torn leaf states —
// and Count is summed from the encoded leaves themselves, so the file is
// always self-consistent even while concurrent writers advance other
// intervals.

// wireNode mirrors node for gob.
type wireNode struct {
	Lo, Hi   uint64
	Fanout   int
	GateBase uint64
	Leaf     []byte // non-nil for leaves (ebh encoding)
	Children []*wireNode
}

// wireIndex is the payload form. Magic and version live in the envelope.
type wireIndex struct {
	Name  string
	Tau   float64
	Alpha float64
	H     int
	Count int
	BaseN int
	Root  *wireNode
}

const (
	persistVersion = 2
	snapMagic      = "CHAMSNP2"
	snapEndMagic   = "CHAMEND2"
	snapHeaderLen  = len(snapMagic) + 4
	snapFooterLen  = 8 + 4 + len(snapEndMagic)

	// maxHeight and maxFanout bound decoded structure parameters; a corrupt
	// or adversarial file fails fast instead of driving allocation or
	// recursion off a cliff. heightFor caps real heights around 7 even at
	// 2^64 keys; real fanouts top out near the DARE root budget (2^20).
	maxHeight    = 64
	maxNodeDepth = 1 << 10
	maxFanout    = 1 << 26
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// WriteTo implements io.WriterTo: it serializes the index structure in the
// checksummed envelope format. It may run during live Insert/Delete traffic
// and alongside the retrainer — see the consistency notes above.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.rebuildMu.RLock()
	t := ix.tree.Load()
	root, count, err := snapshotTree(t)
	h := t.h
	baseN := int(ix.baseN.Load())
	name, tau, alpha := ix.cfg.Name, ix.cfg.Tau, ix.cfg.Alpha
	ix.rebuildMu.RUnlock()
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: w}
	err = writeSnapshot(cw, wireIndex{
		Name: name, Tau: tau, Alpha: alpha,
		H: h, Count: count, BaseN: baseN, Root: root,
	})
	return cw.n, err
}

// snapshotTree encodes the tree with each gate subtree read under its
// interval lock (retrainer and writers excluded per interval) and leaf-only
// paths under the fallback interval, returning the wire root and the exact
// key count of the encoded leaves.
func snapshotTree(t *tree) (*wireNode, int, error) {
	total := 0
	var enc func(nd *node, guarded bool) (*wireNode, error)
	enc = func(nd *node, guarded bool) (*wireNode, error) {
		if nd.leaf != nil {
			if !guarded {
				fid := t.fallbackID()
				t.locks.LockRead(fid)
				defer t.locks.UnlockRead(fid)
			}
			w, err := encodeNode(nd)
			if err == nil {
				total += nd.leaf.Len()
			}
			return w, err
		}
		w := &wireNode{Lo: nd.lo, Hi: nd.hi, Fanout: nd.fanout, GateBase: nd.gateBase}
		w.Children = make([]*wireNode, len(nd.children))
		for j := range nd.children {
			if !guarded && nd.gateBase != noGate {
				id := nd.gateBase + uint64(j)
				t.locks.LockRead(id)
				c := gateChild(nd, j) // re-read under the lock: retrain swaps this slot
				cw, err := enc(c, true)
				t.locks.UnlockRead(id)
				if err != nil {
					return nil, err
				}
				w.Children[j] = cw
				continue
			}
			cw, err := enc(nd.children[j], guarded)
			if err != nil {
				return nil, err
			}
			w.Children[j] = cw
		}
		return w, nil
	}
	root, err := enc(t.root, false)
	return root, total, err
}

// writeSnapshot writes the envelope (header, gob payload, CRC footer).
func writeSnapshot(w io.Writer, wi wireIndex) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(wi); err != nil {
		return err
	}
	var hdr [snapHeaderLen]byte
	copy(hdr[:], snapMagic)
	binary.LittleEndian.PutUint32(hdr[len(snapMagic):], persistVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	var ftr [snapFooterLen]byte
	binary.LittleEndian.PutUint64(ftr[0:], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(ftr[8:], crc32.Checksum(payload.Bytes(), snapCRC))
	copy(ftr[12:], snapEndMagic)
	_, err := w.Write(ftr[:])
	return err
}

// ErrSnapshotCorrupt wraps every integrity failure ReadFrom detects, so the
// recovery path can distinguish "this snapshot is damaged, try the previous
// one" from I/O errors.
var ErrSnapshotCorrupt = errors.New("core: corrupt index snapshot")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
}

// ReadFrom implements io.ReaderFrom: it replaces the index contents with a
// structure written by WriteTo, verifying the CRC footer and rejecting
// negative or absurd structural parameters before anything is installed. On
// error the index is unchanged. The receiver's construction policies are
// kept for future retraining/reconstruction. Any running retrainer is
// stopped; restarting it is the caller's choice (the public chameleon.Load
// restarts it per Options.RetrainEvery).
func (ix *Index) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	var hdr [snapHeaderLen]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return cr.n, corruptf("short header: %v", err)
	}
	if string(hdr[:len(snapMagic)]) != snapMagic {
		return cr.n, corruptf("not a chameleon index snapshot")
	}
	if v := binary.LittleEndian.Uint32(hdr[len(snapMagic):]); v != persistVersion {
		return cr.n, fmt.Errorf("core: unsupported index snapshot version %d", v)
	}
	rest, err := io.ReadAll(cr)
	if err != nil {
		return cr.n, err
	}
	if len(rest) < snapFooterLen {
		return cr.n, corruptf("truncated before footer")
	}
	payload := rest[:len(rest)-snapFooterLen]
	ftr := rest[len(rest)-snapFooterLen:]
	if string(ftr[12:]) != snapEndMagic {
		return cr.n, corruptf("missing end magic (torn write?)")
	}
	if got := binary.LittleEndian.Uint64(ftr[0:]); got != uint64(len(payload)) {
		return cr.n, corruptf("payload length %d, footer says %d", len(payload), got)
	}
	if got, want := crc32.Checksum(payload, snapCRC), binary.LittleEndian.Uint32(ftr[8:]); got != want {
		return cr.n, corruptf("checksum mismatch (crc %08x, footer %08x)", got, want)
	}

	var w wireIndex
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		return cr.n, corruptf("payload decode: %v", err)
	}
	if w.Root == nil {
		return cr.n, corruptf("no root")
	}
	if w.H < 1 || w.H > maxHeight {
		return cr.n, corruptf("height %d out of range", w.H)
	}
	if w.Count < 0 || w.BaseN < 0 {
		return cr.n, corruptf("negative count %d / baseN %d", w.Count, w.BaseN)
	}
	if !(w.Tau > 0 && w.Tau < 1) {
		return cr.n, corruptf("tau %v out of (0,1)", w.Tau)
	}
	if !(w.Alpha > 0) || w.Alpha > 1e18 {
		return cr.n, corruptf("alpha %v out of range", w.Alpha)
	}
	root, err := decodeNode(w.Root, 0, par.Workers(ix.cfg.Workers))
	if err != nil {
		return cr.n, err
	}
	if got := subtreeKeys(root); got != w.Count {
		return cr.n, corruptf("leaves hold %d keys, header says %d", got, w.Count)
	}
	t := &tree{root: root, h: w.H}
	if err := rebuildGates(t); err != nil {
		return cr.n, err
	}
	ix.lifecycle.Lock()
	defer ix.lifecycle.Unlock()
	ix.stopRetrainerLocked()
	ix.cfg.Name = w.Name
	ix.cfg.Tau, ix.cfg.Alpha = w.Tau, w.Alpha
	ix.rebuildMu.Lock()
	ix.installTree(t, w.Count)
	ix.baseN.Store(int64(w.BaseN))
	ix.rebuildMu.Unlock()
	return cr.n, nil
}

// encodeNode serializes one subtree without locking; snapshotTree owns the
// locking discipline, and tests craft corrupt files through it directly.
func encodeNode(n *node) (*wireNode, error) {
	w := &wireNode{Lo: n.lo, Hi: n.hi, Fanout: n.fanout, GateBase: n.gateBase}
	if n.leaf != nil {
		blob, err := n.leaf.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.Leaf = blob
		return w, nil
	}
	w.Children = make([]*wireNode, len(n.children))
	for i, c := range n.children {
		cw, err := encodeNode(c)
		if err != nil {
			return nil, err
		}
		w.Children[i] = cw
	}
	return w, nil
}

// decodeNode rebuilds one subtree, decoding children across up to workers
// goroutines — leaf unmarshalling (the dominant recovery cost after CRC
// verification) is independent per child. Parallel and serial decode accept
// and reject exactly the same files: all children are decoded and the
// lowest-indexed error wins, which is the error the serial loop would have
// returned.
func decodeNode(w *wireNode, depth, workers int) (*node, error) {
	if depth > maxNodeDepth {
		return nil, corruptf("node nesting exceeds %d", maxNodeDepth)
	}
	if w.Leaf != nil {
		leaf := new(ebh.Node)
		if err := leaf.UnmarshalBinary(w.Leaf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		return &node{lo: w.Lo, hi: w.Hi, fanout: 1, gateBase: noGate, leaf: leaf}, nil
	}
	if w.Fanout < 1 || w.Fanout > maxFanout || len(w.Children) != w.Fanout {
		return nil, corruptf("inner node fanout %d with %d children", w.Fanout, len(w.Children))
	}
	n := newInner(w.Lo, w.Hi, w.Fanout)
	n.gateBase = w.GateBase
	errs := make([]error, w.Fanout)
	par.Do(w.Fanout, workers, func(i int) {
		cw := w.Children[i]
		if cw == nil {
			errs[i] = corruptf("nil child %d of inner node", i)
			return
		}
		c, err := decodeNode(cw, depth+1, workers)
		if err != nil {
			errs[i] = err
			return
		}
		n.children[i] = c
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// rebuildGates reconstructs the gate registry and lock table of a decoded
// tree from the persisted gateBase markers. Gate IDs must be dense (the
// builder assigns them sequentially); a corrupt file with inflated IDs is
// rejected rather than allocating an inflated registry.
func rebuildGates(t *tree) error {
	maxID := uint64(0)
	totalChildren := 0
	var scan func(n *node)
	var collect []func(gates []*gate)
	scan = func(n *node) {
		if n.leaf != nil {
			return
		}
		totalChildren += len(n.children)
		if n.gateBase != noGate {
			parent := n
			base := n.gateBase
			for j := range n.children {
				j := j
				child := n.children[j]
				id := base + uint64(j)
				if id < base {
					// gateBase near MaxUint64 wrapped around.
					maxID = ^uint64(0)
					continue
				}
				if id+1 > maxID {
					maxID = id + 1
				}
				collect = append(collect, func(gates []*gate) {
					g := &gate{id: id, parent: parent, slot: j, lo: child.lo, hi: child.hi}
					g.keys.Store(int64(subtreeKeys(child)))
					gates[id] = g
				})
			}
		}
		for _, c := range n.children {
			scan(c)
		}
	}
	scan(t.root)
	if maxID > uint64(totalChildren) {
		return corruptf("gate ID %d exceeds %d child slots", maxID, totalChildren)
	}
	gates := make([]*gate, maxID)
	for _, fn := range collect {
		fn(gates)
	}
	// A well-formed file has dense IDs; fill any hole with an inert gate so
	// the hot path never nil-derefs.
	for i, g := range gates {
		if g == nil {
			gates[i] = &gate{id: uint64(i)}
		}
	}
	t.gates = gates
	t.locks = ilock.New(len(gates) + 1)
	return nil
}

func subtreeKeys(n *node) int {
	if n.leaf != nil {
		return n.leaf.Len()
	}
	total := 0
	for _, c := range n.children {
		total += subtreeKeys(c)
	}
	return total
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
