package core

import (
	"log"
	"sort"
	"time"

	"chameleon/internal/dataset"
)

// StartRetrainer launches the background retraining goroutine of Section V.
// It scans the level-h gates every period and retrains the subtrees whose
// update ratio crossed the configured thresholds, holding only that
// interval's Retraining-Lock while it works. Calling it twice or on an index
// without gates is a no-op; concurrent Start/Stop/Close calls are safe.
func (ix *Index) StartRetrainer(period time.Duration) {
	ix.lifecycle.Lock()
	defer ix.lifecycle.Unlock()
	ix.startRetrainerLocked(period)
}

// startRetrainerLocked is StartRetrainer under an already-held lifecycle
// mutex.
func (ix *Index) startRetrainerLocked(period time.Duration) {
	if ix.stop != nil || len(ix.tree.Load().gates) == 0 {
		return
	}
	if period <= 0 {
		period = 10 * time.Second // the paper's evaluation setting
	}
	ix.lastPeriod = period
	ix.stop = make(chan struct{})
	ix.done = make(chan struct{})
	go ix.retrainLoop(period, ix.stop, ix.done)
}

// StopRetrainer halts the background goroutine and waits for it to finish
// any in-flight subtree. It is safe to call when no retrainer runs, and from
// multiple goroutines at once.
func (ix *Index) StopRetrainer() {
	ix.lifecycle.Lock()
	defer ix.lifecycle.Unlock()
	ix.stopRetrainerLocked()
}

// stopRetrainerLocked is StopRetrainer under an already-held lifecycle
// mutex.
func (ix *Index) stopRetrainerLocked() {
	if ix.stop == nil {
		return
	}
	close(ix.stop)
	<-ix.done
	ix.stop, ix.done = nil, nil
}

// PauseRetrainer suspends background maintenance without stopping the
// goroutine: timer-driven retrain passes and threshold-triggered full
// reconstructions are skipped until ResumeRetrainer. The overload layer calls
// this while the durable write queue is saturated, so structural maintenance
// stops competing with foreground writes for interval locks; pausing is a
// cheap atomic flip, safe to call at write-path frequency.
func (ix *Index) PauseRetrainer() { ix.retrainPaused.Store(true) }

// ResumeRetrainer re-enables background maintenance after PauseRetrainer.
func (ix *Index) ResumeRetrainer() { ix.retrainPaused.Store(false) }

// RetrainerPaused reports whether background maintenance is suspended.
func (ix *Index) RetrainerPaused() bool { return ix.retrainPaused.Load() }

// RetrainerRunning reports whether the background goroutine is live;
// intended for tests and introspection.
func (ix *Index) RetrainerRunning() bool {
	ix.lifecycle.Lock()
	defer ix.lifecycle.Unlock()
	return ix.stop != nil
}

// RetrainStats reports how many subtree retrains have run and the total time
// spent inside Retraining-Locks (the quantity Fig. 14 charts).
func (ix *Index) RetrainStats() (count int64, total time.Duration) {
	return ix.retrains.Load(), time.Duration(ix.retrainNanos.Load())
}

// retrainFailpoint, when non-nil, runs at the top of every guarded retrain
// pass. Tests inject panics through it to exercise the degradation path; it
// must be set before the retrainer starts and cleared only after it stops.
var retrainFailpoint func()

// reconstructFailpoint, when non-nil, runs inside Reconstruct while the
// exclusive rebuild lock is held — tests panic through it to prove the lock
// is released on the way out.
var reconstructFailpoint func()

// maxRetrainBackoffFactor caps the exponential backoff after consecutive
// panicking passes at this multiple of the configured period.
const maxRetrainBackoffFactor = 32

// retrainLoop is the background goroutine of Section V, hardened for
// graceful degradation: a panicking pass (a bug in the fanout policy, a
// cost-model edge case) is recovered and logged, and the next attempt is
// delayed with capped exponential backoff instead of either crashing the
// process or killing the goroutine and silently stopping all maintenance.
// A clean pass resets the cadence.
func (ix *Index) retrainLoop(period time.Duration, stop, done chan struct{}) {
	defer close(done)
	delay := period
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
		}
		if ix.guardedRetrainPass() {
			delay = period
		} else {
			delay *= 2
			if limit := maxRetrainBackoffFactor * period; delay > limit {
				delay = limit
			}
			log.Printf("chameleon/core: retraining pass failed; backing off %v (%d panics so far)",
				delay, ix.retrainPanics.Load())
		}
		timer.Reset(delay)
	}
}

// guardedRetrainPass runs one retraining pass under recover(), reporting
// whether it completed without panicking.
func (ix *Index) guardedRetrainPass() (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ix.retrainPanics.Add(1)
			log.Printf("chameleon/core: retraining pass panicked (recovered): %v", r)
			ok = false
		}
	}()
	// Paused (foreground overload): skip the pass entirely. Reported as a
	// clean pass so the loop keeps its normal cadence instead of backing off.
	if ix.retrainPaused.Load() {
		return true
	}
	if retrainFailpoint != nil {
		retrainFailpoint()
	}
	ix.RetrainPass()
	return true
}

// RetrainPanics reports how many retraining or reconstruction attempts ended
// in a recovered panic — the graceful-degradation counter operators alarm on.
func (ix *Index) RetrainPanics() int64 { return ix.retrainPanics.Load() }

// RetrainPass runs one scan over all gates, retraining the drifted subtrees.
// It is exported so the harness can trigger retraining deterministically
// (Fig. 14) in addition to the timer-driven mode (Fig. 15). The pass holds
// the rebuild lock shared, so it runs alongside foreground writers (the
// per-interval locks arbitrate) but never across a structure swap.
func (ix *Index) RetrainPass() int {
	ix.rebuildMu.RLock()
	defer ix.rebuildMu.RUnlock()
	t := ix.tree.Load()
	retrained := 0
	for _, g := range t.gates {
		upd := g.updates.Load()
		if upd == 0 {
			continue
		}
		keys := g.keys.Load()
		if keys < 1 {
			keys = 1
		}
		ratio := float64(upd) / float64(keys)
		switch {
		case ratio >= ix.cfg.StructThreshold:
			ix.retrainStructural(t, g)
			retrained++
		case ratio >= ix.cfg.LightThreshold:
			ix.retrainLight(t, g)
			retrained++
		}
	}
	return retrained
}

// retrainLight rebuilds every EBH leaf under the gate at the Theorem 1
// capacity provisioned for the gate's observed drift rate, without touching
// the subtree shape. No sorting is involved — the property the paper credits
// for Chameleon's low retraining time (Fig. 14) — and the provisioning keeps
// upcoming inserts off the inline-expansion path.
func (ix *Index) retrainLight(t *tree, g *gate) {
	start := time.Now()
	t.locks.LockRetrain(g.id)
	// Deferred unlock: a panic mid-rebuild (recovered in retrainLoop) must
	// not strand the interval locked forever.
	defer t.locks.UnlockRetrain(g.id)
	keys := g.keys.Load()
	if keys < 1 {
		keys = 1
	}
	growth := 1 + float64(g.updates.Load())/float64(keys)
	n := 0
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.leaf != nil {
			nd.leaf.RetrainFor(int(growth * float64(nd.leaf.Len())))
			n += nd.leaf.Len()
			return
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(gateChild(g.parent, g.slot))
	g.keys.Store(int64(n))
	g.updates.Store(0)
	ix.retrains.Add(1)
	ix.retrainNanos.Add(time.Since(start).Nanoseconds())
}

// retrainStructural gathers the subtree's entries, re-runs the fanout policy
// (the paper invokes TSMDP here: "we retrain the local structure by
// employing TSMDP as the background thread"), and swaps the rebuilt subtree
// into the parent slot — all under the interval's Retraining-Lock, so
// foreground operations on other intervals proceed untouched.
func (ix *Index) retrainStructural(t *tree, g *gate) {
	start := time.Now()
	t.locks.LockRetrain(g.id)
	defer t.locks.UnlockRetrain(g.id)
	old := gateChild(g.parent, g.slot)
	var ks, vs []uint64
	var collect func(nd *node)
	collect = func(nd *node) {
		if nd.leaf != nil {
			ks, vs = nd.leaf.AppendEntries(ks, vs)
			return
		}
		for _, c := range nd.children {
			collect(c)
		}
	}
	collect(old)
	sortPairs(ks, vs)
	// Atomic store: optimistic readers load this slot with no lock held
	// (their seqlock validation catches the swap, but the pointer itself
	// must never tear).
	setGateChild(g.parent, g.slot, ix.buildLower(ks, vs, g.lo, g.hi, t.h, t.h))
	g.keys.Store(int64(len(ks)))
	g.updates.Store(0)
	ix.retrains.Add(1)
	ix.retrainNanos.Add(time.Since(start).Nanoseconds())
}

// pairSlice sorts parallel key/value slices by key via sort.Sort, replacing
// the earlier hand-rolled quicksort whose adversarial worst case was O(n²)
// with unbounded recursion; sort.Sort's introsort bounds both.
type pairSlice struct{ ks, vs []uint64 }

func (p pairSlice) Len() int           { return len(p.ks) }
func (p pairSlice) Less(i, j int) bool { return p.ks[i] < p.ks[j] }
func (p pairSlice) Swap(i, j int) {
	p.ks[i], p.ks[j] = p.ks[j], p.ks[i]
	p.vs[i], p.vs[j] = p.vs[j], p.vs[i]
}

// sortPairs sorts keys ascending, carrying values along.
func sortPairs(ks, vs []uint64) {
	sort.Sort(pairSlice{ks, vs})
}

// maybeReconstruct runs a full DARE reconstruction when cumulative updates
// crossed the configured threshold. With concurrent writers many goroutines
// can observe the crossing at once; a CAS flag elects a single rebuilder and
// the others continue — a complete rebuild is the one operation every
// learned index eventually blocks writers for, but it should run once.
func (ix *Index) maybeReconstruct() {
	thr := ix.cfg.ReconstructThreshold
	if thr <= 0 {
		return
	}
	// A full rebuild excludes every writer for its whole collect-to-swap
	// window — the worst possible moment is while the write path is already
	// saturated. Deferred, not skipped: the threshold stays crossed, so the
	// first write after resume retries.
	if ix.retrainPaused.Load() {
		return
	}
	if !ix.thresholdCrossed(thr) {
		return
	}
	if !ix.reconstructing.CompareAndSwap(false, true) {
		return
	}
	defer ix.reconstructing.Store(false)
	// The elected rebuilder runs on a foreground writer goroutine: a panic
	// inside the MARL construction would otherwise tear down the caller's
	// request (or the process). Recover, count it, and carry on serving —
	// the structure is unchanged on failure and the threshold stays crossed,
	// so a later write retries the rebuild.
	defer func() {
		if r := recover(); r != nil {
			ix.retrainPanics.Add(1)
			log.Printf("chameleon/core: full reconstruction panicked (recovered): %v", r)
		}
	}()
	// Re-check: a rebuild may have landed while racing for the flag.
	if ix.thresholdCrossed(thr) {
		ix.Reconstruct()
	}
}

func (ix *Index) thresholdCrossed(thr float64) bool {
	base := ix.baseN.Load()
	if base < 1 {
		base = 1
	}
	return float64(ix.updatesSince.Load()) >= thr*float64(base)
}

// Reconstruct gathers the index's entire contents and rebuilds the structure
// from scratch through the full MARL construction (DARE shaping the upper
// levels again). The retrainer is paused for the duration and restarted with
// its previous period. Writers are excluded from collect to swap (their
// updates would be silently lost otherwise); readers keep serving from the
// pre-swap snapshot, whose contents are identical, and pick up the new root
// on their next operation.
func (ix *Index) Reconstruct() {
	ix.lifecycle.Lock()
	defer ix.lifecycle.Unlock()
	wasActive := ix.stop != nil
	ix.stopRetrainerLocked()
	func() {
		// Closure-scoped exclusive hold with deferred unlock: if the MARL
		// build panics, the caller's recover() must find rebuildMu released,
		// or every future writer deadlocks.
		ix.rebuildMu.Lock()
		defer ix.rebuildMu.Unlock()
		if reconstructFailpoint != nil {
			reconstructFailpoint()
		}
		t := ix.tree.Load()
		var ks, vs []uint64
		var collect func(nd *node)
		collect = func(nd *node) {
			if nd.leaf != nil {
				ks, vs = nd.leaf.AppendEntries(ks, vs)
				return
			}
			for _, c := range nd.children {
				collect(c)
			}
		}
		collect(t.root)
		sortPairs(ks, vs)
		// Runtime rebuilds use the (cheaper) reconstruction policy; bulk
		// loads keep the full-budget one.
		saved := ix.cfg.Dare
		ix.cfg.Dare = ix.cfg.ReconstructDare
		defer func() { ix.cfg.Dare = saved }()
		nt := ix.buildTree(ks, vs)
		ix.installTree(nt, len(ks))
	}()
	ix.reconstructions.Add(1)
	if wasActive {
		ix.startRetrainerLocked(ix.lastPeriod)
	}
}

// Reconstructions reports how many full rebuilds have run.
func (ix *Index) Reconstructions() int { return int(ix.reconstructions.Load()) }

// DriftedGates counts gates whose update ratio currently exceeds the light
// threshold — an observability hook used by examples and tests.
func (ix *Index) DriftedGates() int {
	n := 0
	for _, g := range ix.tree.Load().gates {
		keys := g.keys.Load()
		if keys < 1 {
			keys = 1
		}
		if float64(g.updates.Load())/float64(keys) >= ix.cfg.LightThreshold {
			n++
		}
	}
	return n
}

// LocalSkewness recomputes the lsn statistic over the index's current
// contents (Definition 3); exported for observability. Gate children are
// read under shared interval locks so the walk is safe while the retrainer
// and writers run.
func (ix *Index) LocalSkewness() float64 {
	t := ix.tree.Load()
	var ks []uint64
	var walk func(nd *node, guarded bool)
	walk = func(nd *node, guarded bool) {
		if nd.leaf != nil {
			if guarded {
				ks, _ = nd.leaf.AppendEntries(ks, nil)
				return
			}
			fid := t.fallbackID()
			t.locks.LockRead(fid)
			ks, _ = nd.leaf.AppendEntries(ks, nil)
			t.locks.UnlockRead(fid)
			return
		}
		for j := range nd.children {
			if !guarded && nd.gateBase != noGate {
				id := nd.gateBase + uint64(j)
				t.locks.LockRead(id)
				walk(gateChild(nd, j), true)
				t.locks.UnlockRead(id)
			} else {
				walk(nd.children[j], guarded)
			}
		}
	}
	walk(t.root, false)
	ks = dataset.SortDedup(ks)
	return dataset.LocalSkewness(ks)
}
