package core

import (
	"time"

	"chameleon/internal/dataset"
)

// StartRetrainer launches the background retraining goroutine of Section V.
// It scans the level-h gates every period and retrains the subtrees whose
// update ratio crossed the configured thresholds, holding only that
// interval's Retraining-Lock while it works. Calling it twice or on an index
// without gates is a no-op.
func (ix *Index) StartRetrainer(period time.Duration) {
	if ix.stop != nil || len(ix.gates) == 0 {
		return
	}
	if period <= 0 {
		period = 10 * time.Second // the paper's evaluation setting
	}
	ix.lastPeriod = period
	ix.active.Store(true)
	ix.stop = make(chan struct{})
	ix.done = make(chan struct{})
	go ix.retrainLoop(period)
}

// StopRetrainer halts the background goroutine and waits for it to finish
// any in-flight subtree. It is safe to call when no retrainer runs.
func (ix *Index) StopRetrainer() {
	if ix.stop == nil {
		return
	}
	close(ix.stop)
	<-ix.done
	ix.stop, ix.done = nil, nil
	ix.active.Store(false)
}

// RetrainStats reports how many subtree retrains have run and the total time
// spent inside Retraining-Locks (the quantity Fig. 14 charts).
func (ix *Index) RetrainStats() (count int64, total time.Duration) {
	return ix.retrains.Load(), time.Duration(ix.retrainNanos.Load())
}

func (ix *Index) retrainLoop(period time.Duration) {
	defer close(ix.done)
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ix.stop:
			return
		case <-tick.C:
			ix.RetrainPass()
		}
	}
}

// RetrainPass runs one scan over all gates, retraining the drifted subtrees.
// It is exported so the harness can trigger retraining deterministically
// (Fig. 14) in addition to the timer-driven mode (Fig. 15).
func (ix *Index) RetrainPass() int {
	retrained := 0
	for _, g := range ix.gates {
		upd := g.updates.Load()
		if upd == 0 {
			continue
		}
		keys := g.keys.Load()
		if keys < 1 {
			keys = 1
		}
		ratio := float64(upd) / float64(keys)
		switch {
		case ratio >= ix.cfg.StructThreshold:
			ix.retrainStructural(g)
			retrained++
		case ratio >= ix.cfg.LightThreshold:
			ix.retrainLight(g)
			retrained++
		}
	}
	return retrained
}

// retrainLight rebuilds every EBH leaf under the gate at the Theorem 1
// capacity provisioned for the gate's observed drift rate, without touching
// the subtree shape. No sorting is involved — the property the paper credits
// for Chameleon's low retraining time (Fig. 14) — and the provisioning keeps
// upcoming inserts off the inline-expansion path.
func (ix *Index) retrainLight(g *gate) {
	start := time.Now()
	ix.locks.LockRetrain(g.id)
	keys := g.keys.Load()
	if keys < 1 {
		keys = 1
	}
	growth := 1 + float64(g.updates.Load())/float64(keys)
	n := 0
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.leaf != nil {
			nd.leaf.RetrainFor(int(growth * float64(nd.leaf.Len())))
			n += nd.leaf.Len()
			return
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(g.parent.children[g.slot])
	g.keys.Store(int64(n))
	g.updates.Store(0)
	ix.locks.UnlockRetrain(g.id)
	ix.retrains.Add(1)
	ix.retrainNanos.Add(time.Since(start).Nanoseconds())
}

// retrainStructural gathers the subtree's entries, re-runs the fanout policy
// (the paper invokes TSMDP here: "we retrain the local structure by
// employing TSMDP as the background thread"), and swaps the rebuilt subtree
// into the parent slot — all under the interval's Retraining-Lock, so
// foreground operations on other intervals proceed untouched.
func (ix *Index) retrainStructural(g *gate) {
	start := time.Now()
	ix.locks.LockRetrain(g.id)
	old := g.parent.children[g.slot]
	var ks, vs []uint64
	var collect func(nd *node)
	collect = func(nd *node) {
		if nd.leaf != nil {
			ks, vs = nd.leaf.AppendEntries(ks, vs)
			return
		}
		for _, c := range nd.children {
			collect(c)
		}
	}
	collect(old)
	sortPairs(ks, vs)
	g.parent.children[g.slot] = ix.buildLower(ks, vs, g.lo, g.hi, ix.h)
	g.keys.Store(int64(len(ks)))
	g.updates.Store(0)
	ix.locks.UnlockRetrain(g.id)
	ix.retrains.Add(1)
	ix.retrainNanos.Add(time.Since(start).Nanoseconds())
}

// sortPairs sorts keys ascending carrying values along (simple quicksort on
// parallel slices; subtrees are small).
func sortPairs(ks, vs []uint64) {
	if len(ks) < 2 {
		return
	}
	// Insertion sort for small runs, quicksort otherwise.
	if len(ks) <= 24 {
		for i := 1; i < len(ks); i++ {
			k, v := ks[i], vs[i]
			j := i - 1
			for j >= 0 && ks[j] > k {
				ks[j+1], vs[j+1] = ks[j], vs[j]
				j--
			}
			ks[j+1], vs[j+1] = k, v
		}
		return
	}
	p := ks[len(ks)/2]
	l, r := 0, len(ks)-1
	for l <= r {
		for ks[l] < p {
			l++
		}
		for ks[r] > p {
			r--
		}
		if l <= r {
			ks[l], ks[r] = ks[r], ks[l]
			vs[l], vs[r] = vs[r], vs[l]
			l++
			r--
		}
	}
	sortPairs(ks[:r+1], vs[:r+1])
	sortPairs(ks[l:], vs[l:])
}

// maybeReconstruct runs a full DARE reconstruction when cumulative updates
// crossed the configured threshold. Called from the foreground operation
// path only, mirroring the paper's model: a complete rebuild is the one
// operation every learned index eventually blocks for.
func (ix *Index) maybeReconstruct() {
	if ix.cfg.ReconstructThreshold <= 0 {
		return
	}
	base := ix.baseN
	if base < 1 {
		base = 1
	}
	if float64(ix.updatesSince) >= ix.cfg.ReconstructThreshold*float64(base) {
		ix.Reconstruct()
	}
}

// Reconstruct gathers the index's entire contents and rebuilds the structure
// from scratch through the full MARL construction (DARE shaping the upper
// levels again). The retrainer is paused for the duration and restarted with
// its previous period.
func (ix *Index) Reconstruct() {
	wasActive := ix.stop != nil
	ix.StopRetrainer()
	var ks, vs []uint64
	var collect func(nd *node)
	collect = func(nd *node) {
		if nd.leaf != nil {
			ks, vs = nd.leaf.AppendEntries(ks, vs)
			return
		}
		for _, c := range nd.children {
			collect(c)
		}
	}
	collect(ix.root)
	sortPairs(ks, vs)
	// Runtime rebuilds use the (cheaper) reconstruction policy; bulk loads
	// keep the full-budget one.
	saved := ix.cfg.Dare
	ix.cfg.Dare = ix.cfg.ReconstructDare
	ix.reset(ks, vs)
	ix.cfg.Dare = saved
	ix.reconstructions++
	if wasActive {
		ix.StartRetrainer(ix.lastPeriod)
	}
}

// Reconstructions reports how many full rebuilds have run.
func (ix *Index) Reconstructions() int { return ix.reconstructions }

// DriftedGates counts gates whose update ratio currently exceeds the light
// threshold — an observability hook used by examples and tests.
func (ix *Index) DriftedGates() int {
	n := 0
	for _, g := range ix.gates {
		keys := g.keys.Load()
		if keys < 1 {
			keys = 1
		}
		if float64(g.updates.Load())/float64(keys) >= ix.cfg.LightThreshold {
			n++
		}
	}
	return n
}

// LocalSkewness recomputes the lsn statistic over the index's current
// contents (Definition 3); exported for observability. Gate children are
// read under their interval locks so the walk is safe while the retrainer
// runs.
func (ix *Index) LocalSkewness() float64 {
	var ks []uint64
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.leaf != nil {
			ks, _ = nd.leaf.AppendEntries(ks, nil)
			return
		}
		for j := range nd.children {
			if nd.gateBase != noGate {
				id := nd.gateBase + uint64(j)
				ix.locks.LockQuery(id)
				walk(nd.children[j])
				ix.locks.UnlockQuery(id)
			} else {
				walk(nd.children[j])
			}
		}
	}
	walk(ix.root)
	ks = dataset.SortDedup(ks)
	return dataset.LocalSkewness(ks)
}
