package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chameleon/internal/dataset"
	"chameleon/internal/ilock"
)

const tornSalt = 0x9E3779B97F4A7C15

// TestOptimisticTornReadOracle is the seqlock oracle of DESIGN.md §13: N
// optimistic readers race writers churning half the key space plus forced
// light/structural retrains and full reconstructions. Every value the read
// path returns must be exactly key^salt — a torn probe (key from one write,
// value from another, or a half-applied rescatter) can produce nothing of
// that shape. Stable keys must always be found; keys never inserted must
// never be found (no phantoms). Run under -race: the race detector
// additionally proves every racing access is atomic.
func TestOptimisticTornReadOracle(t *testing.T) {
	const n = 20_000
	// Stable keys: even multiples of 4. Churn keys: multiples of 4 plus 2
	// (inserted and deleted forever). Odd keys: never present (phantoms).
	base := make([]uint64, n)
	for i := range base {
		base[i] = uint64(i) * 4
	}
	vals := make([]uint64, n)
	for i, k := range base {
		vals[i] = k ^ tornSalt
	}
	ix := New(Config{ReconstructThreshold: -1})
	if err := ix.BulkLoad(base, vals); err != nil {
		t.Fatal(err)
	}

	dur := 1200 * time.Millisecond
	if testing.Short() {
		dur = 250 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	stop := make(chan struct{})
	time.AfterFunc(time.Until(deadline), func() { close(stop) })

	var wg sync.WaitGroup
	var lookups atomic.Uint64

	const writers = 2
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(n))*4 + 2
				if err := ix.Insert(k, k^tornSalt); err == nil {
					ix.Delete(k) //nolint:errcheck
				}
			}
		}(w)
	}

	// Forced maintenance: light+structural retrain passes and periodic full
	// reconstructions, so optimistic readers race every kind of swap.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			ix.RetrainPass()
			if i%5 == 4 {
				ix.Reconstruct()
			}
			i++
		}
	}()

	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 99))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0: // stable key: must be found with the exact value
					k := uint64(rng.Intn(n)) * 4
					v, ok := ix.Lookup(k)
					if !ok {
						t.Errorf("stable key %d not found", k)
						return
					}
					if v != k^tornSalt {
						t.Errorf("TORN READ: key %d returned %#x, want %#x", k, v, k^tornSalt)
						return
					}
				case 1: // churn key: may or may not exist, value must match
					k := uint64(rng.Intn(n))*4 + 2
					if v, ok := ix.Lookup(k); ok && v != k^tornSalt {
						t.Errorf("TORN READ: churn key %d returned %#x, want %#x", k, v, k^tornSalt)
						return
					}
				default: // phantom: never inserted, must never be found
					k := uint64(rng.Intn(4*n))&^1 + 1
					if v, ok := ix.Lookup(k); ok {
						t.Errorf("PHANTOM: absent key %d returned %#x", k, v)
						return
					}
				}
				lookups.Add(1)
			}
		}(r)
	}
	wg.Wait()
	if lookups.Load() == 0 {
		t.Fatal("oracle performed no lookups")
	}
	t.Logf("oracle: %d validated lookups, %d fallbacks", lookups.Load(), ix.ReadFallbacks())
}

// TestLookupFallbackOnHeldWriteLock pins a key's interval under an exclusive
// write lock and checks that an optimistic Lookup exhausts its retries,
// takes the locked fallback (blocking until release), still returns the
// right answer, and accounts the fallback.
func TestLookupFallbackOnHeldWriteLock(t *testing.T) {
	keys := dataset.Uniform(50_000, 11)
	ix := New(Config{ReconstructThreshold: -1})
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	k := keys[len(keys)/2]

	// Find the interval guarding k the same way the read path does.
	tr := ix.tree.Load()
	n := tr.root
	for n.leaf == nil && n.gateBase == noGate {
		n = n.children[route(k, n)]
	}
	id := tr.fallbackID()
	if n.leaf == nil {
		id = n.gateBase + uint64(route(k, n))
	}

	tr.locks.LockWrite(id)
	before := ix.ReadFallbacks()
	got := make(chan [2]uint64, 1)
	go func() {
		v, ok := ix.Lookup(k)
		f := uint64(0)
		if ok {
			f = 1
		}
		got <- [2]uint64{v, f}
	}()
	// The lookup must be blocked in the locked fallback now, not returning
	// a value probed during the exclusive section.
	select {
	case r := <-got:
		tr.locks.UnlockWrite(id)
		t.Fatalf("Lookup returned (%d, %v) while the interval was write-locked", r[0], r[1] == 1)
	case <-time.After(50 * time.Millisecond):
	}
	tr.locks.UnlockWrite(id)
	select {
	case r := <-got:
		if r[1] != 1 || r[0] != k {
			t.Fatalf("fallback Lookup = (%d, %v), want (%d, true)", r[0], r[1] == 1, k)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Lookup never completed after the write lock was released")
	}
	if after := ix.ReadFallbacks(); after <= before {
		t.Fatalf("ReadFallbacks = %d, want > %d (retry exhaustion must be accounted)", after, before)
	}
}

// TestLockedReadsConfig forces the locked baseline and checks lookups still
// answer correctly and never touch the optimistic machinery's fallback
// counter (they ARE the locked path).
func TestLockedReadsConfig(t *testing.T) {
	keys := dataset.Uniform(10_000, 5)
	ix := New(Config{LockedReads: true, ReconstructThreshold: -1})
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:100] {
		if v, ok := ix.Lookup(k); !ok || v != k {
			t.Fatalf("Lookup(%d) = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := ix.Lookup(keys[len(keys)-1] + 12345); ok {
		t.Fatal("absent key found")
	}
	if ix.ReadFallbacks() != 0 {
		t.Fatalf("locked reads incremented the fallback counter: %d", ix.ReadFallbacks())
	}
}

// TestInstallTreeSizesLockTable is the satellite regression for the modulo
// aliasing hazard: every published snapshot must carry a lock table of
// len(gates)+1 slots so two distinct live intervals can never share a slot
// (and falsely serialize). It checks the invariant across bulk load and
// reconstruction, and that installTree repairs a deliberately undersized
// table.
func TestInstallTreeSizesLockTable(t *testing.T) {
	keys := dataset.Uniform(80_000, 3)
	ix := New(Config{ReconstructThreshold: -1})
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	check := func(when string) {
		tr := ix.tree.Load()
		if got, want := tr.locks.Len(), len(tr.gates)+1; got != want {
			t.Fatalf("%s: lock table has %d slots for %d gates, want %d", when, got, len(tr.gates), want)
		}
	}
	check("after BulkLoad")
	ix.Reconstruct()
	check("after Reconstruct")

	// installTree must repair an undersized table rather than publish
	// aliased intervals.
	tr := ix.tree.Load()
	if len(tr.gates) < 2 {
		t.Skip("tree too small to alias")
	}
	broken := &tree{root: tr.root, gates: tr.gates, h: tr.h, locks: ilock.New(1)}
	ix.rebuildMu.Lock()
	ix.installTree(broken, ix.Len())
	ix.rebuildMu.Unlock()
	check("after installing an undersized table")
}
