package core_test

import (
	"testing"

	"chameleon/internal/core"
	"chameleon/internal/index"
	"chameleon/internal/index/indextest"
	"chameleon/internal/rl"
)

// TestBattery runs the same differential battery every baseline passes
// against the Chameleon index itself.
func TestBattery(t *testing.T) {
	build := func() index.Index {
		dcfg := rl.DefaultDAREConfig()
		dcfg.GA.Generations = 5
		dcfg.GA.Pop = 8
		dcfg.SampleCap = 8192
		return core.New(core.Config{
			Name:   "Chameleon",
			Dare:   rl.NewCostDARE(dcfg),
			Policy: rl.NewCostPolicy(rl.DefaultEnv()),
		})
	}
	indextest.Run(t, build, indextest.Options{})
}
