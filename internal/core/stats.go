package core

import "chameleon/internal/index"

// Stats implements index.StatsProvider, producing the Table V metrics. It
// takes each gate's shared read lock while visiting its subtree (and the
// fallback lock for gate-less leaves), so it is safe to call while the
// retrainer and concurrent writers run.
func (ix *Index) Stats() index.Stats {
	t := ix.tree.Load()
	var s index.Stats
	var keySum int
	var depthSum, errSum float64
	leafStats := func(n *node, depth int) {
		if depth > s.MaxHeight {
			s.MaxHeight = depth
		}
		maxE, sumE := n.leaf.ErrorStats()
		if maxE > s.MaxError {
			s.MaxError = maxE
		}
		errSum += sumE
		keySum += n.leaf.Len()
		depthSum += float64(depth) * float64(n.leaf.Len())
	}
	var visit func(n *node, depth int, guarded bool)
	visit = func(n *node, depth int, guarded bool) {
		s.Nodes++
		if n.leaf != nil {
			if guarded {
				leafStats(n, depth)
				return
			}
			fid := t.fallbackID()
			t.locks.LockRead(fid)
			leafStats(n, depth)
			t.locks.UnlockRead(fid)
			return
		}
		for j := range n.children {
			if !guarded && n.gateBase != noGate {
				// The child pointer must be read under the interval lock:
				// the retrainer swaps it.
				id := n.gateBase + uint64(j)
				t.locks.LockRead(id)
				visit(gateChild(n, j), depth+1, true)
				t.locks.UnlockRead(id)
			} else {
				visit(n.children[j], depth+1, guarded)
			}
		}
	}
	visit(t.root, 1, false)
	if keySum > 0 {
		s.AvgHeight = depthSum / float64(keySum)
		s.AvgError = errSum / float64(keySum)
	}
	return s
}

// Bytes implements index.Index: leaf slabs plus inner-node child arrays and
// headers, visited under the same locking discipline as Stats.
func (ix *Index) Bytes() int {
	t := ix.tree.Load()
	total := 0
	var visit func(n *node, guarded bool)
	visit = func(n *node, guarded bool) {
		if n.leaf != nil {
			if guarded {
				total += n.leaf.Bytes() + 64
				return
			}
			fid := t.fallbackID()
			t.locks.LockRead(fid)
			total += n.leaf.Bytes() + 64
			t.locks.UnlockRead(fid)
			return
		}
		total += 64 + 8*len(n.children)
		for j := range n.children {
			if !guarded && n.gateBase != noGate {
				id := n.gateBase + uint64(j)
				t.locks.LockRead(id)
				visit(gateChild(n, j), true)
				t.locks.UnlockRead(id)
			} else {
				visit(n.children[j], guarded)
			}
		}
	}
	visit(t.root, false)
	// Gate bookkeeping and the lock table.
	total += len(t.gates)*64 + t.locks.Len()*4
	return total
}
