package core

import "chameleon/internal/index"

// Stats implements index.StatsProvider, producing the Table V metrics. It
// takes each gate's Query-Lock while visiting its subtree so it is safe to
// call while the retrainer runs.
func (ix *Index) Stats() index.Stats {
	var s index.Stats
	var keySum int
	var depthSum, errSum float64
	var visit func(n *node, depth int)
	visit = func(n *node, depth int) {
		s.Nodes++
		if n.leaf != nil {
			if depth > s.MaxHeight {
				s.MaxHeight = depth
			}
			maxE, sumE := n.leaf.ErrorStats()
			if maxE > s.MaxError {
				s.MaxError = maxE
			}
			errSum += sumE
			keySum += n.leaf.Len()
			depthSum += float64(depth) * float64(n.leaf.Len())
			return
		}
		for j := range n.children {
			if n.gateBase != noGate {
				// The child pointer must be read under the interval lock:
				// the retrainer swaps it.
				id := n.gateBase + uint64(j)
				ix.locks.LockQuery(id)
				visit(n.children[j], depth+1)
				ix.locks.UnlockQuery(id)
			} else {
				visit(n.children[j], depth+1)
			}
		}
	}
	visit(ix.root, 1)
	if keySum > 0 {
		s.AvgHeight = depthSum / float64(keySum)
		s.AvgError = errSum / float64(keySum)
	}
	return s
}

// Bytes implements index.Index: leaf slabs plus inner-node child arrays and
// headers.
func (ix *Index) Bytes() int {
	total := 0
	var visit func(n *node)
	visit = func(n *node) {
		if n.leaf != nil {
			total += n.leaf.Bytes() + 64
			return
		}
		total += 64 + 8*len(n.children)
		for j := range n.children {
			if n.gateBase != noGate {
				id := n.gateBase + uint64(j)
				ix.locks.LockQuery(id)
				visit(n.children[j])
				ix.locks.UnlockQuery(id)
			} else {
				visit(n.children[j])
			}
		}
	}
	visit(ix.root)
	// Gate bookkeeping and the lock table.
	total += len(ix.gates)*64 + ix.locks.Len()*4
	return total
}
