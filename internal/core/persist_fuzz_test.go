package core

import (
	"bytes"
	"testing"

	"chameleon/internal/dataset"
	"chameleon/internal/rl"
)

// fuzzIndex is a minimal-budget index for per-execution construction inside
// the fuzz loop.
func fuzzIndex() *Index {
	dcfg := rl.DefaultDAREConfig()
	dcfg.GA.Generations = 1
	dcfg.GA.Pop = 4
	dcfg.SampleCap = 512
	return New(Config{Name: "Chameleon", Dare: rl.NewCostDARE(dcfg)})
}

// FuzzReadFrom feeds arbitrary bytes — seeded with valid snapshots plus
// bit-flipped and truncated variants — into ReadFrom. The contract under
// fuzzing: never panic, never allocate unboundedly, and when a file is
// (necessarily validly) accepted, leave behind a usable index.
func FuzzReadFrom(f *testing.F) {
	small := fuzzIndex()
	if err := small.BulkLoad(dataset.Uniform(2_000, 9), nil); err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := small.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	var empty bytes.Buffer
	if _, err := fuzzIndex().WriteTo(&empty); err != nil {
		f.Fatal(err)
	}

	f.Add(valid.Bytes())
	f.Add(empty.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CHAMSNP2"))
	f.Add(valid.Bytes()[:valid.Len()/2])            // truncated
	f.Add(valid.Bytes()[:valid.Len()-5])            // footer torn
	f.Add(append([]byte("junk"), valid.Bytes()...)) // misaligned
	for _, pos := range []int{8, 13, valid.Len() / 2, valid.Len() - 10} {
		flipped := append([]byte(nil), valid.Bytes()...)
		flipped[pos] ^= 0x80
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4<<20 {
			return // cap decode work per exec, not a correctness bound
		}
		ix := fuzzIndex()
		if _, err := ix.ReadFrom(bytes.NewReader(data)); err != nil {
			return
		}
		// Accepted ⇒ the index must behave: Len consistent, lookups and
		// updates safe, retraining machinery intact.
		if ix.Len() < 0 {
			t.Fatalf("negative Len %d after accepted load", ix.Len())
		}
		for k := uint64(0); k < 1024; k += 37 {
			ix.Lookup(k)
		}
		probe := uint64(0xC0FFEE)
		if err := ix.Insert(probe, 1); err == nil {
			if _, ok := ix.Lookup(probe); !ok {
				t.Fatal("insert acknowledged but not readable")
			}
		}
		ix.RetrainPass()
	})
}
