package core

import (
	"bytes"
	"testing"

	"chameleon/internal/dataset"
	"chameleon/internal/rl"
)

// workerIndex is fastIndex with an explicit worker count, so the serial
// (Workers: 1) and parallel builds differ in nothing but parallelism.
func workerIndex(workers int) *Index {
	dcfg := rl.DefaultDAREConfig()
	dcfg.GA = dcfg.GA.Defaults()
	dcfg.GA.Generations = 5
	dcfg.GA.Pop = 8
	dcfg.SampleCap = 8192
	return New(Config{
		Name:    "Chameleon",
		Dare:    rl.NewCostDARE(dcfg),
		Policy:  rl.NewCostPolicy(rl.DefaultEnv()),
		Workers: workers,
	})
}

// TestParallelBuildMatchesSerial is the determinism contract of the parallel
// bulk load: for every evaluation dataset, the tree built with 8 workers must
// be indistinguishable from the serial build — same lookups, same structural
// stats, and a byte-identical serialized snapshot (the strongest equality the
// public surface can express: it covers node intervals, fanouts, gate bases,
// and every leaf's slot layout).
func TestParallelBuildMatchesSerial(t *testing.T) {
	for _, name := range dataset.Names {
		keys := dataset.Generate(name, 30_000, 11)
		serial := workerIndex(1)
		parallel := workerIndex(8)
		if err := serial.BulkLoad(keys, nil); err != nil {
			t.Fatalf("%s: serial BulkLoad: %v", name, err)
		}
		if err := parallel.BulkLoad(keys, nil); err != nil {
			t.Fatalf("%s: parallel BulkLoad: %v", name, err)
		}
		if serial.Len() != parallel.Len() {
			t.Fatalf("%s: Len %d vs %d", name, serial.Len(), parallel.Len())
		}
		if ss, ps := serial.Stats(), parallel.Stats(); ss != ps {
			t.Fatalf("%s: stats diverge:\nserial   %+v\nparallel %+v", name, ss, ps)
		}
		for i := 0; i < len(keys); i += 37 {
			sv, sok := serial.Lookup(keys[i])
			pv, pok := parallel.Lookup(keys[i])
			if sv != pv || sok != pok {
				t.Fatalf("%s: Lookup(%d) serial=(%d,%v) parallel=(%d,%v)",
					name, keys[i], sv, sok, pv, pok)
			}
		}
		var sbuf, pbuf bytes.Buffer
		if _, err := serial.WriteTo(&sbuf); err != nil {
			t.Fatalf("%s: serial WriteTo: %v", name, err)
		}
		if _, err := parallel.WriteTo(&pbuf); err != nil {
			t.Fatalf("%s: parallel WriteTo: %v", name, err)
		}
		if !bytes.Equal(sbuf.Bytes(), pbuf.Bytes()) {
			t.Fatalf("%s: serialized snapshots differ (%d vs %d bytes)",
				name, sbuf.Len(), pbuf.Len())
		}
	}
}

// TestParallelDecodeMatchesSerial pins the recovery side: loading a snapshot
// with 8 decode workers yields the same index as loading it serially.
func TestParallelDecodeMatchesSerial(t *testing.T) {
	keys := dataset.Generate(dataset.FACE, 30_000, 7)
	src := workerIndex(0)
	if err := src.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if _, err := src.WriteTo(&snap); err != nil {
		t.Fatal(err)
	}

	serial := workerIndex(1)
	parallel := workerIndex(8)
	if _, err := serial.ReadFrom(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("serial ReadFrom: %v", err)
	}
	if _, err := parallel.ReadFrom(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("parallel ReadFrom: %v", err)
	}
	if serial.Len() != parallel.Len() {
		t.Fatalf("Len %d vs %d", serial.Len(), parallel.Len())
	}
	if ss, ps := serial.Stats(), parallel.Stats(); ss != ps {
		t.Fatalf("stats diverge:\nserial   %+v\nparallel %+v", ss, ps)
	}
	for i := 0; i < len(keys); i += 37 {
		sv, sok := serial.Lookup(keys[i])
		pv, pok := parallel.Lookup(keys[i])
		if sv != pv || sok != pok {
			t.Fatalf("Lookup(%d) serial=(%d,%v) parallel=(%d,%v)",
				keys[i], sv, sok, pv, pok)
		}
	}
	var sbuf, pbuf bytes.Buffer
	if _, err := serial.WriteTo(&sbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := parallel.WriteTo(&pbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sbuf.Bytes(), pbuf.Bytes()) {
		t.Fatal("re-serialized snapshots differ after parallel vs serial load")
	}
}
