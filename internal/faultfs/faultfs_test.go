package faultfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriterShortWrites(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Budget: 10}
	if n, err := w.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("first write: %d, %v", n, err)
	}
	// Crosses the budget: 5 of 8 bytes land, then the injected error.
	if n, err := w.Write([]byte("abcdefgh")); n != 5 || err != ErrInjected {
		t.Fatalf("crossing write: %d, %v", n, err)
	}
	if n, err := w.Write([]byte("x")); n != 0 || err != ErrInjected {
		t.Fatalf("post-budget write: %d, %v", n, err)
	}
	if got := buf.String(); got != "12345abcde" {
		t.Fatalf("underlying bytes %q", got)
	}
}

func TestCrashFSStepsAndUnsyncedLoss(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")

	// Budget 4: open (1), write (2), sync (3), syncdir (4) succeed; the
	// second write is the crash point. The synced prefix survives — its
	// dirent was made durable by SyncDir — the unsynced tail does not.
	c := NewCrashFS(OS, 4)
	f, err := c.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("lost")); err != ErrCrashed {
		t.Fatalf("crash-point write: %v", err)
	}
	if !c.Crashed() {
		t.Fatal("not crashed")
	}
	if err := f.Sync(); err != ErrCrashed {
		t.Fatalf("post-crash sync: %v", err)
	}
	if err := c.Rename(path, path+"2"); err == nil {
		t.Fatal("post-crash rename succeeded")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable" {
		t.Fatalf("on-disk bytes %q, want only the synced prefix", data)
	}
	if c.Steps() != 5 {
		t.Fatalf("Steps = %d, want 5", c.Steps())
	}
}

func TestCrashFSTearFractions(t *testing.T) {
	for tear, wantLen := range map[int]int{0: 0, 1: 4, 2: 8} {
		dir := t.TempDir()
		path := filepath.Join(dir, "f")
		// Pre-create the file outside CrashFS so its dirent is durable and the
		// crash rollback leaves the torn bytes observable.
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		c := NewCrashFS(OS, 2) // open + write succeed; sync crashes
		c.Tear = tear
		f, err := c.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("12345678")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != ErrCrashed {
			t.Fatalf("tear=%d: sync: %v", tear, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != wantLen {
			t.Fatalf("tear=%d: %d bytes survived, want %d", tear, len(data), wantLen)
		}
	}
}

// TestCrashFSDirentRollback checks the directory-entry fault model: creations,
// renames, and removals whose parent directory was never fsynced un-happen at
// the crash, while a SyncDir pins everything before it.
func TestCrashFSDirentRollback(t *testing.T) {
	dir := t.TempDir()
	created := filepath.Join(dir, "created")
	oldName := filepath.Join(dir, "old")
	newName := filepath.Join(dir, "new")
	doomed := filepath.Join(dir, "doomed")
	pinned := filepath.Join(dir, "pinned")
	for _, p := range []string{oldName, doomed} {
		if err := os.WriteFile(p, []byte("body-of-"+filepath.Base(p)), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c := NewCrashFS(OS, 1000)
	// Pinned by SyncDir: survives the crash.
	f, err := c.OpenFile(pinned, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	// Unsynced dirent mutations: all rolled back by the crash.
	f, err = c.OpenFile(created, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // file data synced, dirent is not
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(oldName, newName); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(doomed); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(doomed); !os.IsNotExist(err) {
		t.Fatal("remove did not reach the base FS")
	}

	// Exhaust the budget to force the crash.
	c.mu.Lock()
	c.budget = 0
	c.mu.Unlock()
	if _, err := c.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644); err == nil || !c.Crashed() {
		t.Fatalf("crash not triggered: %v", err)
	}

	if got, err := os.ReadFile(pinned); err != nil || string(got) != "kept" {
		t.Fatalf("pinned file: %q, %v — SyncDir'd creation must survive", got, err)
	}
	if _, err := os.Stat(created); !os.IsNotExist(err) {
		t.Fatal("unsynced creation survived the crash")
	}
	if _, err := os.Stat(newName); !os.IsNotExist(err) {
		t.Fatal("unsynced rename destination survived the crash")
	}
	if got, err := os.ReadFile(oldName); err != nil || string(got) != "body-of-old" {
		t.Fatalf("rename source not restored: %q, %v", got, err)
	}
	if got, err := os.ReadFile(doomed); err != nil || string(got) != "body-of-doomed" {
		t.Fatalf("unsynced removal not resurrected: %q, %v", got, err)
	}
}

func TestCrashFSCleanCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	c := NewCrashFS(OS, 1000)
	f, err := c.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "kept" {
		t.Fatalf("on-disk bytes %q", data)
	}
	if c.Crashed() {
		t.Fatal("crashed within budget")
	}
}
