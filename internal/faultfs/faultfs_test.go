package faultfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriterShortWrites(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Budget: 10}
	if n, err := w.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("first write: %d, %v", n, err)
	}
	// Crosses the budget: 5 of 8 bytes land, then the injected error.
	if n, err := w.Write([]byte("abcdefgh")); n != 5 || err != ErrInjected {
		t.Fatalf("crossing write: %d, %v", n, err)
	}
	if n, err := w.Write([]byte("x")); n != 0 || err != ErrInjected {
		t.Fatalf("post-budget write: %d, %v", n, err)
	}
	if got := buf.String(); got != "12345abcde" {
		t.Fatalf("underlying bytes %q", got)
	}
}

func TestCrashFSStepsAndUnsyncedLoss(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")

	// Budget 3: open (1), write (2), sync (3) succeed; the second write is
	// the crash point. With Tear=0 its bytes — and nothing synced before it —
	// are... the synced prefix survives, the unsynced tail does not.
	c := NewCrashFS(OS, 3)
	f, err := c.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("lost")); err != ErrCrashed {
		t.Fatalf("crash-point write: %v", err)
	}
	if !c.Crashed() {
		t.Fatal("not crashed")
	}
	if err := f.Sync(); err != ErrCrashed {
		t.Fatalf("post-crash sync: %v", err)
	}
	if err := c.Rename(path, path+"2"); err == nil {
		t.Fatal("post-crash rename succeeded")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable" {
		t.Fatalf("on-disk bytes %q, want only the synced prefix", data)
	}
	if c.Steps() != 4 {
		t.Fatalf("Steps = %d, want 4", c.Steps())
	}
}

func TestCrashFSTearFractions(t *testing.T) {
	for tear, wantLen := range map[int]int{0: 0, 1: 4, 2: 8} {
		dir := t.TempDir()
		path := filepath.Join(dir, "f")
		c := NewCrashFS(OS, 2) // open + write succeed; sync crashes
		c.Tear = tear
		f, err := c.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("12345678")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != ErrCrashed {
			t.Fatalf("tear=%d: sync: %v", tear, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != wantLen {
			t.Fatalf("tear=%d: %d bytes survived, want %d", tear, len(data), wantLen)
		}
	}
}

func TestCrashFSCleanCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	c := NewCrashFS(OS, 1000)
	f, err := c.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "kept" {
		t.Fatalf("on-disk bytes %q", data)
	}
	if c.Crashed() {
		t.Fatal("crashed within budget")
	}
}
