// Package faultfs is the failure-injection layer under the durability stack.
// It defines the narrow filesystem surface the WAL and checkpointer use (FS,
// File), the production implementation over package os, and two failpoint
// wrappers used by tests:
//
//   - Writer: an io.Writer that short-writes or errors once a byte budget is
//     exhausted, for unit-testing torn-frame handling in isolation.
//   - CrashFS: a whole-filesystem wrapper that simulates a process kill at a
//     chosen step. Writes are buffered per file and only reach the underlying
//     file on Sync — exactly the page-cache behaviour a real crash exposes —
//     and when the budget runs out the crash flushes a configurable fraction
//     of each file's unsynced tail, producing the torn files recovery must
//     survive. Directory entries are modelled too: a file creation, rename,
//     or removal whose parent directory was not fsynced (SyncDir) by the
//     crash is rolled back, the worst-case outcome a journaling filesystem
//     permits — a created file vanishes, a rename un-happens, a removed file
//     comes back. Every operation after the crash fails with ErrCrashed.
//
// The crash-matrix test in the root package drives CrashFS through every step
// of a live workload (WAL appends, checkpoint writes, renames) and then
// reopens the directory with the real OS filesystem, as a rebooted process
// would.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// File is the subset of *os.File the durability stack needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem surface behind the WAL and the checkpointer. OS is the
// production implementation; CrashFS wraps any FS with fault injection.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(name string, perm fs.FileMode) error
	// SyncDir fsyncs a directory so renames and creations in it are durable.
	SyncDir(name string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(name string, perm fs.FileMode) error {
	return os.MkdirAll(name, perm)
}
func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrInjected is returned by Writer once its budget is exhausted.
var ErrInjected = errors.New("faultfs: injected write failure")

// ErrCrashed is returned by every CrashFS operation after the simulated kill.
var ErrCrashed = errors.New("faultfs: simulated crash")

// Writer passes through to W until Budget bytes have been written; the write
// that crosses the budget is truncated to the remaining bytes (a torn write)
// and fails with ErrInjected, as do all writes after it.
type Writer struct {
	W      io.Writer
	Budget int64
}

func (w *Writer) Write(p []byte) (int, error) {
	if w.Budget <= 0 {
		return 0, ErrInjected
	}
	if int64(len(p)) <= w.Budget {
		n, err := w.W.Write(p)
		w.Budget -= int64(n)
		return n, err
	}
	n, err := w.W.Write(p[:w.Budget])
	w.Budget -= int64(n)
	if err == nil {
		err = ErrInjected
	}
	return n, err
}

// CrashFS wraps a base FS and kills the "process" after a fixed number of
// mutating steps. Each Write, Sync, Truncate, Rename, Remove, SyncDir, and
// mutating OpenFile consumes one step. File writes are held in a per-file
// unsynced buffer until Sync; the crash flushes TornFraction (0, ½, or 1,
// selected by Tear) of each buffer to the underlying file and drops the rest,
// so the surviving on-disk state covers the spectrum from "nothing after the
// last fsync" to "everything the process ever wrote".
//
// Directory entries get the same treatment: creations, renames, and removals
// are journaled until SyncDir on the parent directory, and a crash rolls the
// unsynced ones back in reverse order — the pessimistic outcome of losing the
// directory block. (Renames are assumed same-directory, which is all the
// durability stack performs.)
type CrashFS struct {
	base FS

	mu      sync.Mutex
	budget  int64
	steps   int64
	crashed bool
	// Tear picks how much of each unsynced buffer survives the crash:
	// tear%3 == 0 → none, 1 → half, 2 → all.
	Tear int

	open    []*crashFile
	journal []direntOp // dirent mutations not yet covered by a SyncDir
}

// direntOp is one journaled directory mutation, undone on crash unless the
// parent directory was fsynced after it.
type direntOp struct {
	kind  int    // direntCreate, direntRename, direntRemove
	dir   string // parent directory whose SyncDir makes it durable
	path  string // created path / rename destination / removed path
	old   string // rename source
	saved []byte // removed file's bytes, for resurrection
}

const (
	direntCreate = iota
	direntRename
	direntRemove
)

// NewCrashFS wraps base with a crash after budget mutating steps. A budget
// larger than the workload's total step count never crashes; use Steps after
// a clean run to size the matrix.
func NewCrashFS(base FS, budget int64) *CrashFS {
	return &CrashFS{base: base, budget: budget}
}

// Steps reports how many mutating steps have been consumed so far.
func (c *CrashFS) Steps() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.steps
}

// Crashed reports whether the simulated kill has happened.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// step consumes one mutating step; it returns false — after tearing the
// unsynced buffers — when this step is the crash point or the crash already
// happened. Callers must not touch the underlying FS on false.
func (c *CrashFS) step() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return false
	}
	c.steps++
	c.budget--
	if c.budget < 0 {
		c.crashLocked()
		return false
	}
	return true
}

// crashLocked tears every open file's unsynced buffer per Tear, rolls back
// every dirent mutation not covered by a SyncDir, and marks the filesystem
// dead.
func (c *CrashFS) crashLocked() {
	c.crashed = true
	for _, f := range c.open {
		keep := 0
		switch c.Tear % 3 {
		case 1:
			keep = len(f.pending) / 2
		case 2:
			keep = len(f.pending)
		}
		if keep > 0 {
			f.f.Write(f.pending[:keep]) //nolint:errcheck // best-effort tear
		}
		f.pending = nil
	}
	// Undo unsynced dirent mutations newest-first, so chains compose: a file
	// created then renamed is first un-renamed, then un-created (removed).
	// All best-effort — a rollback of an op that never reached the base FS
	// simply fails.
	for i := len(c.journal) - 1; i >= 0; i-- {
		e := c.journal[i]
		switch e.kind {
		case direntCreate:
			c.base.Remove(e.path) //nolint:errcheck
		case direntRename:
			c.base.Rename(e.path, e.old) //nolint:errcheck
		case direntRemove:
			if f, err := c.base.OpenFile(e.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644); err == nil {
				f.Write(e.saved) //nolint:errcheck
				f.Close()        //nolint:errcheck
			}
		}
	}
	c.journal = nil
}

// exists reports whether name is present on the base FS.
func (c *CrashFS) exists(name string) bool {
	f, err := c.base.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return false
	}
	f.Close() //nolint:errcheck
	return true
}

// logDirent journals one dirent mutation for crash rollback. Called before
// the base operation so a concurrent crash can at worst roll back an op that
// never happened — harmless — rather than miss one that did.
func (c *CrashFS) logDirent(e direntOp) {
	c.mu.Lock()
	if !c.crashed {
		c.journal = append(c.journal, e)
	}
	c.mu.Unlock()
}

func (c *CrashFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	mutating := flag&(os.O_CREATE|os.O_WRONLY|os.O_RDWR|os.O_TRUNC|os.O_APPEND) != 0
	if mutating {
		if !c.step() {
			return nil, fmt.Errorf("open %s: %w", name, ErrCrashed)
		}
	} else if c.Crashed() {
		return nil, fmt.Errorf("open %s: %w", name, ErrCrashed)
	}
	if flag&os.O_CREATE != 0 && !c.exists(name) {
		c.logDirent(direntOp{kind: direntCreate, dir: filepath.Dir(name), path: name})
	}
	f, err := c.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	cf := &crashFile{fs: c, f: f}
	c.mu.Lock()
	c.open = append(c.open, cf)
	c.mu.Unlock()
	return cf, nil
}

func (c *CrashFS) Rename(oldpath, newpath string) error {
	if !c.step() {
		return fmt.Errorf("rename %s: %w", oldpath, ErrCrashed)
	}
	c.logDirent(direntOp{kind: direntRename, dir: filepath.Dir(newpath), path: newpath, old: oldpath})
	return c.base.Rename(oldpath, newpath)
}

func (c *CrashFS) Remove(name string) error {
	if !c.step() {
		return fmt.Errorf("remove %s: %w", name, ErrCrashed)
	}
	// Stash the bytes so the crash can resurrect an un-fsynced removal — the
	// stale-file hazard recovery must tolerate.
	var saved []byte
	if f, err := c.base.OpenFile(name, os.O_RDONLY, 0); err == nil {
		saved, _ = io.ReadAll(f)
		f.Close() //nolint:errcheck
	}
	c.logDirent(direntOp{kind: direntRemove, dir: filepath.Dir(name), path: name, saved: saved})
	return c.base.Remove(name)
}

func (c *CrashFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if c.Crashed() {
		return nil, ErrCrashed
	}
	return c.base.ReadDir(name)
}

func (c *CrashFS) MkdirAll(name string, perm fs.FileMode) error {
	if !c.step() {
		return fmt.Errorf("mkdir %s: %w", name, ErrCrashed)
	}
	return c.base.MkdirAll(name, perm)
}

func (c *CrashFS) SyncDir(name string) error {
	if !c.step() {
		return fmt.Errorf("syncdir %s: %w", name, ErrCrashed)
	}
	if err := c.base.SyncDir(name); err != nil {
		return err
	}
	// The fsync made this directory's entries durable: drop their journal
	// records so a later crash no longer rolls them back.
	clean := filepath.Clean(name)
	c.mu.Lock()
	kept := c.journal[:0]
	for _, e := range c.journal {
		if filepath.Clean(e.dir) != clean {
			kept = append(kept, e)
		}
	}
	c.journal = kept
	c.mu.Unlock()
	return nil
}

// crashFile buffers writes until Sync, modelling the page cache a crash
// discards. Reads and seeks are pass-through: the durability stack only reads
// during recovery, before it writes.
type crashFile struct {
	fs      *CrashFS
	f       File
	pending []byte
}

func (f *crashFile) Read(p []byte) (int, error) {
	if f.fs.Crashed() {
		return 0, ErrCrashed
	}
	return f.f.Read(p)
}

func (f *crashFile) Seek(offset int64, whence int) (int64, error) {
	if f.fs.Crashed() {
		return 0, ErrCrashed
	}
	return f.f.Seek(offset, whence)
}

func (f *crashFile) Write(p []byte) (int, error) {
	if !f.fs.step() {
		return 0, ErrCrashed
	}
	f.fs.mu.Lock()
	f.pending = append(f.pending, p...)
	f.fs.mu.Unlock()
	return len(p), nil
}

func (f *crashFile) Sync() error {
	if !f.fs.step() {
		return ErrCrashed
	}
	f.fs.mu.Lock()
	pending := f.pending
	f.pending = nil
	f.fs.mu.Unlock()
	if len(pending) > 0 {
		if _, err := f.f.Write(pending); err != nil {
			return err
		}
	}
	return f.f.Sync()
}

func (f *crashFile) Truncate(size int64) error {
	if !f.fs.step() {
		return ErrCrashed
	}
	return f.f.Truncate(size)
}

// Close flushes the unsynced buffer (a clean close reaches disk eventually)
// unless the crash already happened, in which case the buffer is gone.
func (f *crashFile) Close() error {
	if f.fs.Crashed() {
		f.f.Close() //nolint:errcheck // release the real descriptor regardless
		return ErrCrashed
	}
	f.fs.mu.Lock()
	pending := f.pending
	f.pending = nil
	f.fs.mu.Unlock()
	if len(pending) > 0 {
		if _, err := f.f.Write(pending); err != nil {
			f.f.Close() //nolint:errcheck
			return err
		}
	}
	return f.f.Close()
}
