package faultfs

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// ErrNoSpace is the injected disk-full failure. It wraps syscall.ENOSPC so a
// single errors.Is(err, syscall.ENOSPC) check classifies both real and
// injected disk exhaustion.
var ErrNoSpace = fmt.Errorf("faultfs: injected disk full: %w", syscall.ENOSPC)

// QuotaFS models a small disk: the sum of bytes live in files written through
// it is bounded by a capacity, a write that would exceed it is truncated to
// the remaining room (a torn write, exactly what a real ENOSPC leaves behind)
// and fails with an error wrapping syscall.ENOSPC, and Remove/Truncate credit
// the freed bytes back — so checkpoint GC genuinely reclaims space, and a test
// can "free disk space" with AddCapacity. Sizes are tracked only for files
// written through this FS; pre-existing files cost nothing.
//
// FailNextSyncs injects ENOSPC from fsync instead of write — the fsync-gate
// failure mode where the data was accepted into the page cache but the
// filesystem could not commit it.
type QuotaFS struct {
	base FS

	mu        sync.Mutex
	capacity  int64
	used      int64
	sizes     map[string]int64
	failSyncs int
}

// NewQuotaFS wraps base with capacity bytes of space.
func NewQuotaFS(base FS, capacity int64) *QuotaFS {
	return &QuotaFS{base: base, capacity: capacity, sizes: make(map[string]int64)}
}

// AddCapacity grows (or with a negative n shrinks) the disk — the "operator
// freed space" event ENOSPC recovery tests wait for.
func (q *QuotaFS) AddCapacity(n int64) {
	q.mu.Lock()
	q.capacity += n
	q.mu.Unlock()
}

// Used reports the live bytes currently charged against the capacity.
func (q *QuotaFS) Used() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.used
}

// FailNextSyncs makes the next n Sync calls fail with ENOSPC without touching
// the data already buffered — the ambiguous fsync failure the WAL must treat
// as "nothing past the last durable frame can be trusted".
func (q *QuotaFS) FailNextSyncs(n int) {
	q.mu.Lock()
	q.failSyncs = n
	q.mu.Unlock()
}

func (q *QuotaFS) key(name string) string { return filepath.Clean(name) }

func (q *QuotaFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := q.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	k := q.key(name)
	q.mu.Lock()
	if flag&os.O_TRUNC != 0 {
		q.used -= q.sizes[k]
		q.sizes[k] = 0
	}
	q.mu.Unlock()
	return &quotaFile{fs: q, f: f, key: k}, nil
}

func (q *QuotaFS) Rename(oldpath, newpath string) error {
	if err := q.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	ok, nk := q.key(oldpath), q.key(newpath)
	q.mu.Lock()
	q.used -= q.sizes[nk] // an overwritten target's bytes are freed
	q.sizes[nk] = q.sizes[ok]
	delete(q.sizes, ok)
	q.mu.Unlock()
	return nil
}

func (q *QuotaFS) Remove(name string) error {
	if err := q.base.Remove(name); err != nil {
		return err
	}
	k := q.key(name)
	q.mu.Lock()
	q.used -= q.sizes[k]
	delete(q.sizes, k)
	q.mu.Unlock()
	return nil
}

func (q *QuotaFS) ReadDir(name string) ([]fs.DirEntry, error) { return q.base.ReadDir(name) }
func (q *QuotaFS) MkdirAll(name string, perm fs.FileMode) error {
	return q.base.MkdirAll(name, perm)
}
func (q *QuotaFS) SyncDir(name string) error { return q.base.SyncDir(name) }

// quotaFile charges every written byte against the quota. Writes are treated
// as extensions — the durability stack only ever appends and truncates, so
// overwrite accounting is not modelled.
type quotaFile struct {
	fs  *QuotaFS
	f   File
	key string
}

func (f *quotaFile) Read(p []byte) (int, error) { return f.f.Read(p) }
func (f *quotaFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

func (f *quotaFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	room := f.fs.capacity - f.fs.used
	if room < 0 {
		room = 0
	}
	allowed := int64(len(p))
	short := allowed > room
	if short {
		allowed = room
	}
	f.fs.mu.Unlock()

	n, err := f.f.Write(p[:allowed])
	f.fs.mu.Lock()
	f.fs.used += int64(n)
	f.fs.sizes[f.key] += int64(n)
	f.fs.mu.Unlock()
	if err == nil && short {
		err = fmt.Errorf("write %s: %w", f.key, ErrNoSpace)
	}
	return n, err
}

func (f *quotaFile) Sync() error {
	f.fs.mu.Lock()
	fail := f.fs.failSyncs > 0
	if fail {
		f.fs.failSyncs--
	}
	f.fs.mu.Unlock()
	if fail {
		return fmt.Errorf("sync %s: %w", f.key, ErrNoSpace)
	}
	return f.f.Sync()
}

func (f *quotaFile) Truncate(size int64) error {
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	f.fs.mu.Lock()
	if cur := f.fs.sizes[f.key]; size < cur {
		f.fs.used -= cur - size
		f.fs.sizes[f.key] = size
	}
	f.fs.mu.Unlock()
	return nil
}

func (f *quotaFile) Close() error { return f.f.Close() }

// SlowFS injects a fixed latency into every file Write and/or Sync — a
// dragging disk rather than a failing one. Deadline handling in the layers
// above is tested against it: a slow fsync must not strand a cancellable
// waiter.
type SlowFS struct {
	base FS
	// WriteDelay and SyncDelay are added to every file Write / Sync call.
	WriteDelay time.Duration
	SyncDelay  time.Duration
}

// NewSlowFS wraps base with per-call write and sync latency.
func NewSlowFS(base FS, writeDelay, syncDelay time.Duration) *SlowFS {
	return &SlowFS{base: base, WriteDelay: writeDelay, SyncDelay: syncDelay}
}

func (s *SlowFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := s.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &slowFile{fs: s, f: f}, nil
}

func (s *SlowFS) Rename(oldpath, newpath string) error       { return s.base.Rename(oldpath, newpath) }
func (s *SlowFS) Remove(name string) error                   { return s.base.Remove(name) }
func (s *SlowFS) ReadDir(name string) ([]fs.DirEntry, error) { return s.base.ReadDir(name) }
func (s *SlowFS) MkdirAll(name string, perm fs.FileMode) error {
	return s.base.MkdirAll(name, perm)
}
func (s *SlowFS) SyncDir(name string) error { return s.base.SyncDir(name) }

type slowFile struct {
	fs *SlowFS
	f  File
}

func (f *slowFile) Read(p []byte) (int, error) { return f.f.Read(p) }
func (f *slowFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}
func (f *slowFile) Write(p []byte) (int, error) {
	if d := f.fs.WriteDelay; d > 0 {
		time.Sleep(d)
	}
	return f.f.Write(p)
}
func (f *slowFile) Sync() error {
	if d := f.fs.SyncDelay; d > 0 {
		time.Sleep(d)
	}
	return f.f.Sync()
}
func (f *slowFile) Truncate(size int64) error { return f.f.Truncate(size) }
func (f *slowFile) Close() error              { return f.f.Close() }

// StallFS models a permanently hung device: after a configurable number of
// passing Sync calls, every subsequent Sync blocks until Release. Unlike
// SlowFS the stall has no intrinsic end — it is the fault that turns "slow"
// into "stuck", and the admission/cancellation layers above must keep
// shedding or erroring cleanly for as long as it lasts.
type StallFS struct {
	base FS

	mu        sync.Mutex
	remaining int64 // syncs that pass before stalling; -1 = never stall
	stalled   int   // calls currently blocked
	release   chan struct{}
}

// NewStallFS wraps base; it does not stall until StallSyncs or StallAfter.
func NewStallFS(base FS) *StallFS {
	return &StallFS{base: base, remaining: -1, release: make(chan struct{})}
}

// StallSyncs makes every future Sync block until Release.
func (s *StallFS) StallSyncs() { s.StallAfter(0) }

// StallAfter lets n more Sync calls through, then stalls the rest.
func (s *StallFS) StallAfter(n int) {
	s.mu.Lock()
	s.remaining = int64(n)
	s.mu.Unlock()
}

// Release unblocks every stalled call and stops stalling until the next
// StallSyncs/StallAfter.
func (s *StallFS) Release() {
	s.mu.Lock()
	s.remaining = -1
	close(s.release)
	s.release = make(chan struct{})
	s.mu.Unlock()
}

// Stalled reports how many Sync calls are currently blocked.
func (s *StallFS) Stalled() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalled
}

// gate blocks the caller while the stall is active.
func (s *StallFS) gate() {
	s.mu.Lock()
	if s.remaining < 0 {
		s.mu.Unlock()
		return
	}
	if s.remaining > 0 {
		s.remaining--
		s.mu.Unlock()
		return
	}
	s.stalled++
	ch := s.release
	s.mu.Unlock()
	<-ch
	s.mu.Lock()
	s.stalled--
	s.mu.Unlock()
}

func (s *StallFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := s.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &stallFile{fs: s, f: f}, nil
}

func (s *StallFS) Rename(oldpath, newpath string) error       { return s.base.Rename(oldpath, newpath) }
func (s *StallFS) Remove(name string) error                   { return s.base.Remove(name) }
func (s *StallFS) ReadDir(name string) ([]fs.DirEntry, error) { return s.base.ReadDir(name) }
func (s *StallFS) MkdirAll(name string, perm fs.FileMode) error {
	return s.base.MkdirAll(name, perm)
}
func (s *StallFS) SyncDir(name string) error { return s.base.SyncDir(name) }

type stallFile struct {
	fs *StallFS
	f  File
}

func (f *stallFile) Read(p []byte) (int, error) { return f.f.Read(p) }
func (f *stallFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}
func (f *stallFile) Write(p []byte) (int, error) { return f.f.Write(p) }
func (f *stallFile) Sync() error {
	f.fs.gate()
	return f.f.Sync()
}
func (f *stallFile) Truncate(size int64) error { return f.f.Truncate(size) }
func (f *stallFile) Close() error              { return f.f.Close() }
