package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestQuotaFSTornWriteAndCredit(t *testing.T) {
	dir := t.TempDir()
	q := NewQuotaFS(OS, 10)
	path := filepath.Join(dir, "f")
	f, err := q.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("first write = (%d, %v), want (8, nil)", n, err)
	}
	// Crossing the quota is a torn write: the remaining 2 bytes land, the
	// rest fail with an ENOSPC-classified error.
	n, err := f.Write([]byte("abcdef"))
	if n != 2 {
		t.Fatalf("over-quota write wrote %d bytes, want 2", n)
	}
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-quota write err = %v, want ENOSPC", err)
	}
	if q.Used() != 10 {
		t.Fatalf("Used = %d, want 10", q.Used())
	}
	// Truncating back frees the room.
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if q.Used() != 4 {
		t.Fatalf("Used after truncate = %d, want 4", q.Used())
	}
	if n, err := f.Write([]byte("xyz")); n != 3 || err != nil {
		t.Fatalf("post-truncate write = (%d, %v), want (3, nil)", n, err)
	}
	f.Close() //nolint:errcheck

	// Remove credits everything back.
	if err := q.Remove(path); err != nil {
		t.Fatal(err)
	}
	if q.Used() != 0 {
		t.Fatalf("Used after remove = %d, want 0", q.Used())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("file survived Remove: %v", err)
	}
}

func TestQuotaFSRenameMovesCharge(t *testing.T) {
	dir := t.TempDir()
	q := NewQuotaFS(OS, 100)
	write := func(name string, n int) {
		f, err := q.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(make([]byte, n)); err != nil {
			t.Fatal(err)
		}
		f.Close() //nolint:errcheck
	}
	write("a", 30)
	write("b", 20)
	// Renaming a over b frees b's 20 bytes; a's 30 carry over under the new
	// name.
	if err := q.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if q.Used() != 30 {
		t.Fatalf("Used after rename = %d, want 30", q.Used())
	}
	if err := q.Remove(filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if q.Used() != 0 {
		t.Fatalf("Used after remove = %d, want 0", q.Used())
	}
}

func TestQuotaFSFailNextSyncs(t *testing.T) {
	dir := t.TempDir()
	q := NewQuotaFS(OS, 1000)
	f, err := q.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck
	q.FailNextSyncs(1)
	if err := f.Sync(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("injected sync err = %v, want ENOSPC", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync = %v, want nil", err)
	}
}

func TestSlowFSDelays(t *testing.T) {
	dir := t.TempDir()
	const delay = 20 * time.Millisecond
	s := NewSlowFS(OS, 0, delay)
	f, err := s.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < delay {
		t.Fatalf("sync returned after %v, want ≥ %v", d, delay)
	}
}

func TestStallFSStallAndRelease(t *testing.T) {
	dir := t.TempDir()
	s := NewStallFS(OS)
	f, err := s.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck

	// Passes freely before the stall is armed.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	s.StallAfter(1)
	if err := f.Sync(); err != nil { // the one allowed sync
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Sync() }()
	// The stalled call must still be blocked after a generous grace period.
	deadline := time.After(500 * time.Millisecond)
	for s.Stalled() == 0 {
		select {
		case err := <-done:
			t.Fatalf("stalled sync returned early: %v", err)
		case <-deadline:
			t.Fatal("sync never reached the stall gate")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	s.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released sync = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("released sync never returned")
	}
	// After Release the stall is disarmed.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}
