package chameleon

import (
	"bytes"
	"sync/atomic"
	"testing"

	"chameleon/internal/dataset"
)

// Scaling benchmarks for the group-commit write path and the parallel bulk
// load / recovery paths. Run with -cpu 1,2,4,8 to sweep core counts; the
// harness "scaling" experiment runs the same measurements programmatically
// and emits BENCH_scaling.json.

// BenchmarkDurableInsertSerial is the pre-group-commit baseline shape: one
// writer, so every op pays its own WAL append and fsync.
func BenchmarkDurableInsertSerial(b *testing.B) {
	d, err := OpenDir(b.TempDir(), DirOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Insert(uint64(i)+1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableInsertParallel drives concurrent writers through the
// group-commit queue under SyncEveryOp. Throughput over the serial benchmark
// is the fsync-amortization factor: every op is still individually durable
// before it is acked, but batches share one fsync.
func BenchmarkDurableInsertParallel(b *testing.B) {
	d, err := OpenDir(b.TempDir(), DirOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	var next atomic.Uint64
	b.SetParallelism(8) // 8×GOMAXPROCS writers: batches form even on few cores
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := next.Add(1) // unique key per iteration across goroutines
			if err := d.Insert(k, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBulkLoadSerial and BenchmarkBulkLoadParallel build the same
// 2M-key FACE dataset with Workers pinned to 1 vs one-per-CPU. The trees are
// bit-identical (TestParallelBuildMatchesSerial); only wall clock differs.
func BenchmarkBulkLoadSerial(b *testing.B)   { benchBulkLoad(b, 1) }
func BenchmarkBulkLoadParallel(b *testing.B) { benchBulkLoad(b, 0) }

func benchBulkLoad(b *testing.B, workers int) {
	keys := dataset.Generate(dataset.FACE, 2_000_000, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New(Options{Workers: workers})
		if err := ix.BulkLoad(keys, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoadSerial / Parallel measure recovery's snapshot decode.
func BenchmarkSnapshotLoadSerial(b *testing.B)   { benchSnapshotLoad(b, 1) }
func BenchmarkSnapshotLoadParallel(b *testing.B) { benchSnapshotLoad(b, 0) }

func benchSnapshotLoad(b *testing.B, workers int) {
	keys := dataset.Generate(dataset.FACE, 1_000_000, 42)
	src := New(Options{})
	if err := src.BulkLoad(keys, nil); err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if _, err := src.WriteTo(&snap); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(snap.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New(Options{Workers: workers})
		if _, err := ix.ReadFrom(bytes.NewReader(snap.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures the pipelined WAL replay (parse+CRC on one
// goroutine, apply on the caller) over a log far past the pipelining
// threshold.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	d, err := OpenDir(dir, DirOptions{Sync: SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	const n = 200_000
	for i := uint64(1); i <= n; i++ {
		if err := d.Insert(i*1024, i); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := OpenDir(dir, DirOptions{Sync: SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		if re.Len() != n {
			b.Fatalf("recovered %d keys, want %d", re.Len(), n)
		}
		b.StopTimer()
		re.Close()
		b.StartTimer()
	}
}
