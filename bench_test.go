package chameleon_test

// One testing.B benchmark per paper table and figure (plus per-operation
// micro-benchmarks). Each BenchmarkFigN runs the corresponding harness
// experiment once per b.N at a reduced scale and reports its wall time; the
// micro-benchmarks at the bottom give per-op numbers for the core structures.
//
// Full-scale reproductions with printed tables come from
//
//	go run ./cmd/chameleon-bench -exp all -n 1000000
//
// (see EXPERIMENTS.md for recorded outputs and the paper-vs-measured match).

import (
	"testing"

	"chameleon"
	"chameleon/internal/dataset"
	"chameleon/internal/harness"
	"chameleon/internal/workload"
)

// benchCfg is the reduced scale used inside testing.B loops (full-scale
// reproductions come from cmd/chameleon-bench; see the file comment).
func benchCfg() harness.Config {
	return harness.Config{N: 50_000, Ops: 25_000, Seed: 42}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchCfg()
	var runner func(harness.Config) int
	for _, e := range harness.Experiments {
		if e.ID == id {
			run := e.Run
			runner = func(c harness.Config) int { return len(run(c)) }
		}
	}
	if runner == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runner(cfg) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

func BenchmarkFig1Motivation(b *testing.B)    { runExperiment(b, "fig1") }
func BenchmarkFig8ReadOnly(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig9Skewness(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10Construction(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkTable5Structure(b *testing.B)   { runExperiment(b, "table5") }
func BenchmarkFig11ReadWrite(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFig12UpdateRatio(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13Batched(b *testing.B)      { runExperiment(b, "fig13") }
func BenchmarkFig14Retraining(b *testing.B)   { runExperiment(b, "fig14") }
func BenchmarkFig15RetrainThread(b *testing.B) {
	runExperiment(b, "fig15")
}
func BenchmarkConcThroughput(b *testing.B) { runExperiment(b, "conc") }

// BenchmarkScaling runs the group-commit / parallel-build / parallel-recovery
// experiment once per iteration; the run emits BENCH_scaling.json (CI's bench
// smoke job uploads it as an artifact).
func BenchmarkScaling(b *testing.B) { runExperiment(b, "scaling") }

// BenchmarkShard runs the shard-count sweep (insert and mixed throughput at
// 1/2/4/8 range partitions); the run emits BENCH_shard.json, which CI's
// bench smoke job uploads alongside the scaling artifact.
func BenchmarkShard(b *testing.B) { runExperiment(b, "shard") }

// ---- per-operation micro-benchmarks ----

// benchLookup measures mean point-query latency per index on one dataset.
func benchLookup(b *testing.B, indexName, ds string) {
	b.Helper()
	keys := dataset.Generate(ds, 200_000, 42)
	ix, _ := harness.Build(indexName, keys, 42)
	probes := harness.Probes(keys, 1<<16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(probes[i&(1<<16-1)])
	}
}

func BenchmarkLookupChameleonFACE(b *testing.B) { benchLookup(b, "Chameleon", dataset.FACE) }
func BenchmarkLookupChameleonUDEN(b *testing.B) { benchLookup(b, "Chameleon", dataset.UDEN) }
func BenchmarkLookupALEXFACE(b *testing.B)      { benchLookup(b, "ALEX", dataset.FACE) }
func BenchmarkLookupBTreeFACE(b *testing.B)     { benchLookup(b, "B+Tree", dataset.FACE) }
func BenchmarkLookupLIPPFACE(b *testing.B)      { benchLookup(b, "LIPP", dataset.FACE) }
func BenchmarkLookupPGMFACE(b *testing.B)       { benchLookup(b, "PGM", dataset.FACE) }

// BenchmarkInsertChameleon measures in-place EBH insert latency.
func BenchmarkInsertChameleon(b *testing.B) {
	keys := dataset.Generate(dataset.FACE, 200_000, 42)
	ix := chameleon.New(chameleon.Options{Seed: 1})
	if err := ix.BulkLoad(keys, nil); err != nil {
		b.Fatal(err)
	}
	fresh := workload.FreshKeys(keys, b.N, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(fresh[i], fresh[i]) //nolint:errcheck
	}
}

// BenchmarkInsertALEX is the baseline for the same insert stream.
func BenchmarkInsertALEX(b *testing.B) {
	keys := dataset.Generate(dataset.FACE, 200_000, 42)
	ix, _ := harness.Build("ALEX", keys, 42)
	fresh := workload.FreshKeys(keys, b.N, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(fresh[i], fresh[i]) //nolint:errcheck
	}
}

// BenchmarkMixedThroughput replays a pre-generated Fig. 11-style mixed
// stream (50% writes, even insert/delete split) against Chameleon.
func BenchmarkMixedThroughput(b *testing.B) {
	keys := dataset.Generate(dataset.OSMC, 200_000, 42)
	ops := workload.Mixed(keys, workload.MixedConfig{
		WriteFrac: 0.5, InsertFrac: 0.5, Ops: 1 << 17, Seed: 5,
	})
	ix := chameleon.New(chameleon.Options{Seed: 1})
	if err := ix.BulkLoad(keys, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i&(1<<17-1)]
		switch op.Kind {
		case workload.Lookup:
			ix.Lookup(op.Key)
		case workload.Insert:
			ix.Insert(op.Key, op.Val) //nolint:errcheck
		case workload.Delete:
			ix.Delete(op.Key) //nolint:errcheck
		}
	}
}

// BenchmarkBulkLoadChameleon measures full MARL construction (Fig. 10's
// Chameleon bar).
func BenchmarkBulkLoadChameleon(b *testing.B) {
	keys := dataset.Generate(dataset.FACE, 100_000, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := chameleon.New(chameleon.Options{Seed: 1})
		if err := ix.BulkLoad(keys, nil); err != nil {
			b.Fatal(err)
		}
	}
}
