package chameleon

import (
	"fmt"
	"path/filepath"
	"sort"

	"chameleon/internal/faultfs"
	"chameleon/internal/segment"
	"chameleon/internal/wal"
)

// ErrTierStateMixed is returned by OpenDir when a tiered directory also
// holds a legacy snapshot whose recorded commit sequence is AHEAD of the
// manifest's flushed watermark. The tiered recovery path replays the WAL
// delta on top of segments only; a newer snapshot would mean some acked
// state lives nowhere the replay looks, so opening must refuse rather than
// silently lose it. (Normal operation never produces this state: snapshots
// are only ever garbage-collected once the watermark covers them.)
var ErrTierStateMixed = fmt.Errorf("chameleon: snapshot newer than tier manifest watermark")

// openTieredDir recovers a directory that has a tier manifest. The manifest
// is the base: every referenced segment must open (the commit protocol made
// them durable before the manifest named them — failure here is corruption,
// not a crash signature), and the WAL delta above the flushed watermark is
// replayed on top. Each wal-<s> file's records carry implicit commit
// sequences base_s+1, base_s+2, ... where base_s is the rotation's recorded
// base in seq.meta (absent ⇒ 0, which is exact for pre-migration logs);
// records at or below the watermark are skipped — they are already inside
// segments — and the rest rebuild the memtable and dead set.
func openTieredDir(dir string, opts DirOptions, fsys faultfs.FS, man *segment.Manifest) (*DurableIndex, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	seqMeta, seqMetaGen := readSeqMeta(fsys, dir)
	var walSeqs []uint64
	for _, e := range entries {
		if s, ok := parseSeq(e.Name(), walPrefix, walSuffix); ok {
			walSeqs = append(walSeqs, s)
		}
		if s, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok && seqMeta[s] > man.FlushedSeq {
			return nil, fmt.Errorf("%w: %s at commit %d, watermark %d",
				ErrTierStateMixed, e.Name(), seqMeta[s], man.FlushedSeq)
		}
	}
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] }) // oldest first

	// Open every referenced segment strictly: the manifest's Meta doubles as
	// the integrity cross-check.
	readers := make([]*segment.Reader, 0, len(man.Segments))
	closeAll := func() {
		for _, r := range readers {
			r.Close() //nolint:errcheck
		}
	}
	for i := range man.Segments {
		m := man.Segments[i]
		r, err := segment.Open(fsys, filepath.Join(dir, segment.FileName(m.ID)), &m)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("tier recovery: %s: %w", segment.FileName(m.ID), err)
		}
		readers = append(readers, r)
	}

	// Replay the delta. liveCount starts from the manifest's exact count and
	// moves with every applied record.
	ix := New(opts.Options)
	dead := make(map[uint64]struct{})
	live := man.LiveCount
	commitSeq := man.FlushedSeq
	applyFor := func(base uint64) (func(wal.Record), *uint64) {
		cur := base
		return func(r wal.Record) {
			cur++
			if cur <= man.FlushedSeq {
				return // already folded into segments
			}
			// Originally-validated operations replayed in commit order from
			// the exact state at the watermark need no re-validation.
			switch r.Op {
			case wal.OpInsert:
				ix.inner.Insert(r.Key, r.Val) //nolint:errcheck
				delete(dead, r.Key)
				live++
			case wal.OpDelete:
				dead[r.Key] = struct{}{}
				ix.inner.Delete(r.Key) //nolint:errcheck
				live--
			}
		}, &cur
	}

	liveSeq := uint64(0)
	for _, s := range walSeqs {
		if s > liveSeq {
			liveSeq = s
		}
	}
	for s := range seqMeta {
		if s > liveSeq {
			liveSeq = s // a rotation recorded but its (empty) file lost: never reuse
		}
	}
	var log *wal.Log
	freshLog := false
	liveEmpty := true
	for _, s := range walSeqs {
		base := seqMeta[s]
		apply, cur := applyFor(base)
		if s == liveSeq {
			log, _, err = wal.Open(filepath.Join(dir, walName(s)), walOptions(opts, fsys), apply)
		} else {
			err = replayReadOnly(fsys, filepath.Join(dir, walName(s)), apply)
		}
		if err != nil {
			closeAll()
			return nil, err
		}
		// An EMPTY log never advances the clock: its recorded base can be
		// ahead of the true commit sequence (a snapshot restore pre-creates
		// its successor WAL before the manifest commit adopts the new clock —
		// a crash in between leaves exactly this signature). A log with
		// records always has a truthful base, because rotation records the
		// live clock at the boundary; and everything a truthful empty log's
		// base would prove is already proven by the manifest watermark or by
		// the non-empty logs below it.
		if *cur > base {
			liveEmpty = s != liveSeq
			if *cur > commitSeq {
				commitSeq = *cur
			}
		}
	}
	if log != nil && liveEmpty && seqMeta[liveSeq] != commitSeq {
		// The live log is empty but its recorded base disagrees with the
		// recovered clock (the restore crash window above, or a pre-migration
		// log with no entry). Records appended after this open replay as
		// base+1, base+2, ... on the next recovery, so the base must tell the
		// truth before the log accepts anything.
		seqMeta[liveSeq] = commitSeq
		freshLog = true // reuse the persist-before-returning path below
	}
	if log == nil {
		// No WAL survived (fresh-from-bulk-load directories GC every log
		// before a crash window, or dirents were lost): start a new one at
		// liveSeq+1 with the current commit sequence as its base.
		liveSeq++
		log, _, err = wal.Open(filepath.Join(dir, walName(liveSeq)), walOptions(opts, fsys), nil)
		if err != nil {
			closeAll()
			return nil, err
		}
		seqMeta[liveSeq] = commitSeq
		freshLog = true
	}
	if err := fsys.SyncDir(dir); err != nil {
		log.Close() //nolint:errcheck
		closeAll()
		return nil, err
	}

	if opts.RetrainEvery > 0 {
		ix.inner.StartRetrainer(opts.RetrainEvery)
	}
	d := &DurableIndex{
		ix: ix, fs: fsys, dir: dir, log: log, seq: liveSeq, opts: opts,
		space:      make(chan struct{}),
		seqMeta:    seqMeta,
		seqMetaGen: seqMetaGen,
	}
	d.commitSeq.Store(commitSeq)
	d.tier = newTier(d, man, readers, dead, live)
	if freshLog {
		// Persist the fresh log's base so a crash before the first flush
		// still replays it from the right offset; the SyncDir seals the new
		// sidecar generation's directory entry.
		d.mu.Lock()
		err := d.writeSeqMetaLocked()
		if err == nil {
			err = fsys.SyncDir(dir)
		}
		if err != nil {
			d.mu.Unlock()
			d.Close() //nolint:errcheck
			return nil, err
		}
		d.mu.Unlock()
	}
	return d, nil
}

// attachEmptyTier migrates a legacy directory opened with Tiered set: the
// recovered in-memory state stays the memtable, and the first flush moves it
// wholesale into an L0 segment (after which the legacy snapshot is covered
// by the watermark and garbage-collected).
func attachEmptyTier(d *DurableIndex) {
	d.tier = newTier(d, nil, nil, nil, int64(d.ix.Len()))
}
