package chameleon

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"chameleon/internal/segment"
	"chameleon/internal/wal"
)

// Replication bootstrap for tiered directories. A legacy snapshot stream
// (CHAMSNP2, core.WriteTo) serializes the learned structure; a tiered primary
// instead ships its state as a *segment bundle* — the published segment files
// verbatim plus the volatile tiers (memtable, dead set, frozen run) encoded
// as in-memory CHAMSEG1 runs — so a multi-gigabyte tier streams straight off
// disk without materializing a monolithic structure snapshot.
//
// Bundle layout (CHAMTBN1, lengths little-endian):
//
//	[8]  magic "CHAMTBN1"
//	[4]  manifest envelope length | EncodeManifest bytes (self-CRC'd)
//	per manifest segment, in manifest order:
//	     [8] file length | raw CHAMSEG1 bytes (each self-CRC'd)
//	[8]  magic "CHAMTBN1" again (end marker)
//
// The receiver dispatches on the leading 8 bytes, so either snapshot format
// can land on either kind of follower: a tiered follower folds a legacy
// stream into one L1 segment, and a legacy follower flattens a bundle into
// its in-memory index. Every layer of the bundle carries its own CRC; the
// manifest's per-segment Meta doubles as the cross-check on each run.
const bundleMagic = "CHAMTBN1"

// maxBundleManifest bounds the manifest envelope a decoder will buffer
// before the CRC check can reject it.
const maxBundleManifest = 64 << 20

// errBadBundle wraps bundle-stream framing violations.
var errBadBundle = fmt.Errorf("chameleon: corrupt snapshot bundle")

// ErrRestoreBehind is returned by RestoreSnapshot on a tiered directory when
// the snapshot's commit sequence is behind the local one. Rewinding a tiered
// directory is unsafe: local WAL files hold records with implicit sequences
// above the rewound watermark, and a crash between the restore's manifest
// commit and its WAL garbage collection would replay them as phantoms on top
// of the restored state. A diverged-ahead follower must be wiped and
// re-bootstrapped into an empty directory instead.
var ErrRestoreBehind = fmt.Errorf("chameleon: snapshot is behind local commit sequence")

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writeBundle streams the tier's full visible state as a CHAMTBN1 bundle.
// The caller holds d.mu, so the volatile capture is coherent and no commit
// can land mid-stream; the published segment set is pinned under segMu.RLock
// (the allowed d.mu → segMu.RLock order) while its files are copied raw.
func (t *tier) writeBundle(w io.Writer) (int64, error) {
	d := t.d
	cw := &countingWriter{w: w}

	// Encode the volatile tiers as in-memory runs. IDs only order ties: the
	// memtable run gets the highest (it can only tie the frozen run's
	// watermark when both are empty, but newest-wins must hold regardless),
	// the frozen run the next, both above every disk segment.
	id := t.nextID.Load()
	type virtualRun struct {
		meta segment.Meta
		data []byte
	}
	var virt []virtualRun
	if fr := t.frozen.Load(); fr != nil && len(fr.keys) > 0 {
		var buf bytes.Buffer
		meta, err := segment.Write(&buf, fr.keys, fr.vals, fr.tombs, id, 0, fr.seq, t.eps)
		if err != nil {
			return cw.n, err
		}
		virt = append(virt, virtualRun{meta, buf.Bytes()})
	}
	keys, vals := d.ix.AppendPairs(nil, nil)
	t.deadMu.RLock()
	dk := make([]uint64, 0, len(t.dead))
	for k := range t.dead {
		dk = append(dk, k)
	}
	t.deadMu.RUnlock()
	if len(keys) > 0 || len(dk) > 0 {
		sort.Slice(dk, func(i, j int) bool { return dk[i] < dk[j] })
		mk, mv, mt := mergeLiveDead(keys, vals, dk)
		var buf bytes.Buffer
		meta, err := segment.Write(&buf, mk, mv, mt, id+1, 0, d.commitSeq.Load(), t.eps)
		if err != nil {
			return cw.n, err
		}
		virt = append(virt, virtualRun{meta, buf.Bytes()})
	}

	t.segMu.RLock()
	defer t.segMu.RUnlock()
	set := t.segs.Load()

	man := &segment.Manifest{
		Gen:        t.gen.Load(),
		FlushedSeq: d.commitSeq.Load(),
		LiveCount:  t.liveCount.Load(),
		NextID:     id + 2,
		Segments:   set.metas(),
	}
	for _, v := range virt {
		man.Segments = append(man.Segments, v.meta)
	}
	env, err := segment.EncodeManifest(man)
	if err != nil {
		return cw.n, err
	}
	if _, err := cw.Write([]byte(bundleMagic)); err != nil {
		return cw.n, err
	}
	var len4 [4]byte
	binary.LittleEndian.PutUint32(len4[:], uint32(len(env)))
	if _, err := cw.Write(len4[:]); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(env); err != nil {
		return cw.n, err
	}
	var len8 [8]byte
	for _, r := range set.readers {
		binary.LittleEndian.PutUint64(len8[:], uint64(r.Meta().Bytes))
		if _, err := cw.Write(len8[:]); err != nil {
			return cw.n, err
		}
		if _, err := r.WriteRaw(cw); err != nil {
			return cw.n, err
		}
	}
	for _, v := range virt {
		binary.LittleEndian.PutUint64(len8[:], uint64(len(v.data)))
		if _, err := cw.Write(len8[:]); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(v.data); err != nil {
			return cw.n, err
		}
	}
	if _, err := cw.Write([]byte(bundleMagic)); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// readBundleFlat decodes a CHAMTBN1 stream (positioned at the leading magic)
// and flattens it: runs merge newest-first with tombstone elision, yielding
// the strictly-ascending live contents as of the bundle's watermark.
func readBundleFlat(r io.Reader) (keys, vals []uint64, err error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil || string(head[:]) != bundleMagic {
		return nil, nil, fmt.Errorf("%w: bad magic", errBadBundle)
	}
	var len4 [4]byte
	if _, err := io.ReadFull(r, len4[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: short manifest length", errBadBundle)
	}
	manLen := binary.LittleEndian.Uint32(len4[:])
	if manLen < 16 || manLen > maxBundleManifest {
		return nil, nil, fmt.Errorf("%w: manifest length %d", errBadBundle, manLen)
	}
	env := make([]byte, manLen)
	if _, err := io.ReadFull(r, env); err != nil {
		return nil, nil, fmt.Errorf("%w: short manifest", errBadBundle)
	}
	man, err := segment.DecodeManifest(env)
	if err != nil {
		return nil, nil, err
	}

	type run struct {
		meta    segment.Meta
		entries []segment.Entry
	}
	runs := make([]run, 0, len(man.Segments))
	var len8 [8]byte
	for i := range man.Segments {
		m := man.Segments[i]
		if _, err := io.ReadFull(r, len8[:]); err != nil {
			return nil, nil, fmt.Errorf("%w: short segment length", errBadBundle)
		}
		if n := binary.LittleEndian.Uint64(len8[:]); n != uint64(m.Bytes) {
			return nil, nil, fmt.Errorf("%w: segment %d length %d, manifest says %d",
				errBadBundle, m.ID, n, m.Bytes)
		}
		data := make([]byte, m.Bytes)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, nil, fmt.Errorf("%w: short segment %d", errBadBundle, m.ID)
		}
		sr, err := segment.OpenBytes(data, &m)
		if err != nil {
			return nil, nil, err
		}
		entries, err := sr.LoadEntries()
		sr.Close() //nolint:errcheck
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, run{m, entries})
	}
	if _, err := io.ReadFull(r, head[:]); err != nil || string(head[:]) != bundleMagic {
		return nil, nil, fmt.Errorf("%w: bad end marker", errBadBundle)
	}

	sort.Slice(runs, func(i, j int) bool {
		if runs[i].meta.Seq != runs[j].meta.Seq {
			return runs[i].meta.Seq > runs[j].meta.Seq
		}
		return runs[i].meta.ID > runs[j].meta.ID
	})
	sources := make([]segment.Iterator, len(runs))
	for i := range runs {
		sources[i] = segment.NewSliceIter(runs[i].entries)
	}
	m := segment.NewMerge(sources...)
	for m.Next() {
		e := m.Entry()
		if e.Tomb {
			continue
		}
		keys = append(keys, e.Key)
		vals = append(vals, e.Val)
	}
	if err := m.Err(); err != nil {
		return nil, nil, err
	}
	if int64(len(keys)) != man.LiveCount {
		return nil, nil, fmt.Errorf("%w: flattened to %d live keys, manifest says %d",
			errBadBundle, len(keys), man.LiveCount)
	}
	return keys, vals, nil
}

// restoreFlat replaces the tier's entire contents with the sorted run
// (keys, vals) as of asOfSeq — the receiving half of snapshot bootstrap.
//
// Commit protocol (the manifest is the commit point, same as flush):
//
//  1. Write the run as one L1 segment and seal its directory entry.
//  2. Create the successor WAL file and record its base (= asOfSeq) in
//     seq.meta — WITHOUT swapping the live log. Until step 3 commits, the
//     old log stays live and every acked write keeps its durable home; the
//     stray empty WAL is harmless to recovery because empty logs never
//     advance the recovered commit clock past what manifests and non-empty
//     logs prove.
//  3. WriteManifest (FlushedSeq = asOfSeq) — its SyncDir seals the WAL
//     dirent and the seq.meta rename together with the commit.
//  4. Swap the live log, reset the volatile tiers, publish the new segment
//     set, adopt asOfSeq, and garbage-collect the previous state.
//
// A failure before step 3 aborts cleanly (old state fully authoritative); a
// failure after it poisons, exactly like bulk load — memory could no longer
// match the committed manifest.
func (t *tier) restoreFlat(keys, vals []uint64, asOfSeq uint64) error {
	t.tmu.Lock()
	defer t.tmu.Unlock()
	d := t.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	if asOfSeq < d.commitSeq.Load() {
		return fmt.Errorf("%w: snapshot at %d, local at %d", ErrRestoreBehind, asOfSeq, d.commitSeq.Load())
	}

	id := t.nextID.Load()
	var segMetas []segment.Meta
	removeSeg := func() {
		for i := range segMetas {
			d.fs.Remove(filepath.Join(d.dir, segment.FileName(segMetas[i].ID))) //nolint:errcheck
		}
	}
	if len(keys) > 0 {
		meta, err := segment.Create(d.fs, d.dir, keys, vals, nil, id, 1, asOfSeq, t.eps)
		if err != nil {
			return err
		}
		segMetas = append(segMetas, meta)
		id++
		if err := d.fs.SyncDir(d.dir); err != nil {
			removeSeg()
			return err
		}
	}

	newSeq := d.seq + 1
	walPath := filepath.Join(d.dir, walName(newSeq))
	newLog, _, err := wal.Open(walPath, walOptions(d.opts, d.fs), nil)
	if err != nil {
		removeSeg()
		return err
	}
	if d.seqMeta == nil {
		d.seqMeta = make(map[uint64]uint64)
	}
	d.seqMeta[newSeq] = asOfSeq
	abortWAL := func() {
		delete(d.seqMeta, newSeq)
		newLog.Close()       //nolint:errcheck
		d.fs.Remove(walPath) //nolint:errcheck
		d.writeSeqMetaLocked() //nolint:errcheck // best-effort shrink; a stale entry is harmless (no such file)
	}
	if err := d.writeSeqMetaLocked(); err != nil {
		abortWAL()
		removeSeg()
		return err
	}
	man := &segment.Manifest{
		Gen:        t.gen.Load() + 1,
		FlushedSeq: asOfSeq,
		LiveCount:  int64(len(keys)),
		NextID:     id,
		Segments:   segMetas,
	}
	if err := segment.WriteManifest(d.fs, d.dir, man); err != nil {
		abortWAL()
		removeSeg()
		return err
	}

	// Committed. Open the new segment for serving; failure now poisons.
	var readers []*segment.Reader
	for i := range segMetas {
		r, err := segment.Open(d.fs, filepath.Join(d.dir, segment.FileName(segMetas[i].ID)), &segMetas[i])
		if err != nil {
			d.poisonLocked(fmt.Errorf("snapshot restore: reopen committed segment: %w", err))
			return d.fail
		}
		readers = append(readers, r)
	}
	oldLog := d.log
	d.log = newLog
	d.seq = newSeq
	if oldLog != nil {
		oldLog.Close() //nolint:errcheck
	}
	d.degraded.Store(false)
	d.walErrv.Store(errBox{})
	if err := d.ix.BulkLoad(nil, nil); err != nil {
		d.poisonLocked(fmt.Errorf("snapshot restore reset: %w", err))
		return d.fail
	}
	t.deadMu.Lock()
	t.dead = make(map[uint64]struct{})
	t.deadMu.Unlock()
	old := t.segs.Load()
	t.segs.Store(&segset{readers: readers})
	t.frozen.Store(nil)
	t.bumpVer()
	t.segMu.Lock()
	t.segMu.Unlock() //nolint:staticcheck // reader-retirement barrier
	for _, r := range old.readers {
		r.Close() //nolint:errcheck
	}
	t.gen.Store(man.Gen)
	t.nextID.Store(man.NextID)
	t.flushedSeq.Store(man.FlushedSeq)
	t.flushedLive.Store(man.LiveCount)
	t.liveCount.Store(int64(len(keys)))
	d.commitSeq.Store(asOfSeq)
	t.gcInlineLocked()
	return nil
}
