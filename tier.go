package chameleon

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/segment"
	"chameleon/internal/wal"
)

// Tiered storage (DESIGN.md §15): instead of rewriting the whole index as a
// monolithic snapshot on every Checkpoint, the hot write set stays in the
// in-memory EBH tier (the memtable, backed by the existing WAL/group-commit
// path) and a background flusher periodically freezes it at a commit-sequence
// watermark and writes a delta-sized immutable L0 segment
// (internal/segment). A leveled compactor merges overlapping runs into L1
// with tombstone elision. The manifest is the commit point for both; the WAL
// is truncated only past the flushed watermark, so every crash point leaves
// either the old manifest + a WAL that still covers the delta, or the new
// manifest with the delta inside segments.
//
// Read path (newest wins): memtable → dead-set (tombstones awaiting flush) →
// frozen run (flush in progress) → segments newest-to-oldest, pruned by
// min/max and resolved by each run's learned model. Cold lookups are
// lock-free and use a version counter (tierVer) to detect racing
// memtable↔dead transitions: a key being re-inserted over a flushed
// tombstone momentarily exists in neither the memtable nor the dead set, and
// without the version check a reader could fall through to a segment and
// resurrect the previous incarnation's value.
//
// Lock order: t.tmu → d.mu → d.qmu. t.segMu is independent and nests inside
// anything: readers hold segMu.RLock across segment I/O; a compaction takes
// segMu.Lock only as an empty barrier (Lock; Unlock) after publishing the
// new segment set, so retired readers are closed only after every in-flight
// cold read has drained. Nobody acquires other locks while holding segMu.
type tier struct {
	d *DurableIndex

	// tmu serializes flush, compaction, bulk load, and tier close — the
	// operations that advance the manifest generation. It is taken before
	// d.mu, never after.
	tmu sync.Mutex

	// dead is the set of deleted keys not yet flushed: a delete of a key that
	// (maybe) lives in a segment cannot just remove it from the memtable — a
	// cold read would fall through and resurrect it. Invariant: a key is
	// never in both the memtable and dead. Mutated only under d.mu.
	deadMu sync.RWMutex
	dead   map[uint64]struct{}

	// frozen is the run captured by the last freeze and not yet durable as a
	// segment; non-nil exactly while a flush is in progress (or has failed
	// and awaits retry). Readers consult it between the memtable and the
	// segments.
	frozen atomic.Pointer[frozenRun]

	// segs is the published segment set, newest first. Never nil.
	segMu sync.RWMutex // reader-retirement barrier; see package comment
	segs  atomic.Pointer[segset]

	// ver counts memtable/dead/frozen transitions; cold readers snapshot it
	// before probing and retry if it moved (see lookupCold).
	ver atomic.Uint64

	// Durable-state mirrors, written under tmu, readable anywhere (Health).
	gen         atomic.Uint64 // current manifest generation
	nextID      atomic.Uint64 // next unused segment file ID
	flushedSeq  atomic.Uint64 // manifest watermark F
	flushedLive atomic.Int64  // visible keys as of F

	// liveCount is the exact number of visible keys across all tiers,
	// maintained transactionally under d.mu.
	liveCount atomic.Int64

	// Background flusher.
	flushCh  chan struct{}
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Tunables resolved from DirOptions.
	memBytes  int64
	eps       int
	compactL0 int

	// Health counters.
	flushes       atomic.Uint64
	flushErrs     atomic.Uint64
	compactions   atomic.Uint64
	compactErrs   atomic.Uint64
	flushedBytes  atomic.Uint64 // segment bytes written by flushes
	compactBytes  atomic.Uint64 // segment bytes written by compactions
	lastFlushUS   atomic.Int64  // wall micros of the last successful flush
	lastCompactUS atomic.Int64
	coldReads     atomic.Uint64 // lookups resolved from a segment (hit or tombstone)
	coldErrs      atomic.Uint64 // segment I/O failures on the read path
	coldDist      atomic.Uint64 // cumulative |predicted − actual| rank error
	lastFlushErrv atomic.Value  // errBox
}

// frozenRun is an immutable memtable capture: merged live pairs and dead-set
// tombstones, key-ascending, with the commit-sequence watermark and exact
// live count taken at freeze time.
type frozenRun struct {
	keys, vals []uint64
	tombs      []bool
	seq        uint64
	live       int64
}

// get resolves key against the frozen run. ok distinguishes "this run is
// authoritative for key" (hit or tombstone) from "not present here".
func (fr *frozenRun) get(key uint64) (val uint64, tomb, ok bool) {
	i := sort.Search(len(fr.keys), func(i int) bool { return fr.keys[i] >= key })
	if i == len(fr.keys) || fr.keys[i] != key {
		return 0, false, false
	}
	return fr.vals[i], fr.tombs[i], true
}

// entries materializes the [lo, hi] window as merge input.
func (fr *frozenRun) entries(lo, hi uint64) []segment.Entry {
	i := sort.Search(len(fr.keys), func(i int) bool { return fr.keys[i] >= lo })
	var out []segment.Entry
	for ; i < len(fr.keys) && fr.keys[i] <= hi; i++ {
		out = append(out, segment.Entry{Key: fr.keys[i], Val: fr.vals[i], Tomb: fr.tombs[i]})
	}
	return out
}

// segset is the immutable published list of open segment readers, newest
// first (Seq descending, ID descending on ties).
type segset struct {
	readers []*segment.Reader
}

func (s *segset) metas() []segment.Meta {
	out := make([]segment.Meta, len(s.readers))
	for i, r := range s.readers {
		out[i] = r.Meta()
	}
	return out
}

func sortNewestFirst(readers []*segment.Reader) {
	sort.Slice(readers, func(i, j int) bool {
		mi, mj := readers[i].Meta(), readers[j].Meta()
		if mi.Seq != mj.Seq {
			return mi.Seq > mj.Seq
		}
		return mi.ID > mj.ID
	})
}

const (
	defaultMemtableBytes = 4 << 20
	defaultCompactL0     = 4
	// memtableEntryBytes is the WAL-frame-sized accounting cost of one
	// memtable entry or dead-set tombstone for the flush trigger.
	memtableEntryBytes = 16
	// compactRunMax splits compaction output into runs of at most this many
	// entries so a single L1 file stays pread-friendly.
	compactRunMax = 1 << 19
)

// ErrNotTiered is returned by tier-only operations (Compact, SegmentMetas)
// on a directory opened in legacy snapshot mode.
var ErrNotTiered = errors.New("chameleon: directory is not in tiered mode")

func newTier(d *DurableIndex, man *segment.Manifest, readers []*segment.Reader, dead map[uint64]struct{}, live int64) *tier {
	t := &tier{
		d:         d,
		dead:      dead,
		flushCh:   make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		memBytes:  d.opts.MemtableBytes,
		eps:       d.opts.SegmentEps,
		compactL0: d.opts.CompactL0,
	}
	if t.memBytes <= 0 {
		t.memBytes = defaultMemtableBytes
	}
	if t.eps <= 0 {
		t.eps = segment.DefaultEps
	}
	if t.compactL0 <= 0 {
		t.compactL0 = defaultCompactL0
	}
	if t.dead == nil {
		t.dead = make(map[uint64]struct{})
	}
	sortNewestFirst(readers)
	t.segs.Store(&segset{readers: readers})
	if man != nil {
		t.gen.Store(man.Gen)
		t.nextID.Store(man.NextID)
		t.flushedSeq.Store(man.FlushedSeq)
		t.flushedLive.Store(man.LiveCount)
	} else {
		t.nextID.Store(1)
	}
	t.liveCount.Store(live)
	t.lastFlushErrv.Store(errBox{})
	t.wg.Add(1)
	go t.flusherLoop()
	return t
}

// ---------------------------------------------------------------------------
// Read path

// bumpVer marks a memtable/dead/frozen transition. Callers hold d.mu.
func (t *tier) bumpVer() { t.ver.Add(1) }

// lookup resolves key across every tier, lock-free. The probe order
// (memtable, dead, frozen, segments) combined with the apply order in
// applyRecordLocked makes delete races safe without coordination; insert
// races (a key leaving the dead set) are caught by the version check.
func (t *tier) lookup(key uint64) (uint64, bool) {
	if v, ok := t.d.ix.Lookup(key); ok {
		return v, true
	}
	return t.lookupCold(key)
}

// lookupCold resolves a memtable miss. Retries (rare: only under a racing
// flush or a re-insert over a flushed tombstone) re-probe the memtable too;
// after a few collisions it falls back to the serialized path under d.mu,
// where no transition can interleave.
func (t *tier) lookupCold(key uint64) (uint64, bool) {
	for attempt := 0; attempt < 8; attempt++ {
		ver := t.ver.Load()
		if attempt > 0 {
			if v, ok := t.d.ix.Lookup(key); ok {
				return v, true
			}
		}
		t.deadMu.RLock()
		_, deadHit := t.dead[key]
		t.deadMu.RUnlock()
		if deadHit {
			return 0, false
		}
		if fr := t.frozen.Load(); fr != nil {
			if v, tomb, ok := fr.get(key); ok {
				if tomb {
					return 0, false
				}
				return v, true
			}
		}
		if t.ver.Load() != ver {
			continue // a transition may have moved the key under us
		}
		// The volatile tiers were stable across the probes, so a miss there
		// is authoritative and the segments (logically immutable) decide.
		v, tomb, ok, err := t.segGet(key)
		if err != nil {
			t.coldErrs.Add(1)
			return 0, false
		}
		if !ok || tomb {
			return 0, false
		}
		return v, true
	}
	// Contended: resolve under d.mu where transitions are serialized.
	t.d.mu.Lock()
	defer t.d.mu.Unlock()
	v, ok, err := t.visibleLocked(key)
	if err != nil {
		t.coldErrs.Add(1)
		return 0, false
	}
	return v, ok
}

// segGet probes the published segments newest-to-oldest with min/max
// pruning. ok means some segment is authoritative for key (value or
// tombstone).
func (t *tier) segGet(key uint64) (val uint64, tomb, ok bool, err error) {
	t.segMu.RLock()
	defer t.segMu.RUnlock()
	for _, r := range t.segs.Load().readers {
		v, tb, hit, dist, gerr := r.Get(key)
		if gerr != nil {
			return 0, false, false, gerr
		}
		if hit {
			t.coldReads.Add(1)
			t.coldDist.Add(uint64(dist))
			return v, tb, true, nil
		}
	}
	return 0, false, false, nil
}

// visibleLocked resolves key's visible value under d.mu (no concurrent
// transitions). Shared by validation (presentLocked) and the contended
// lookup fallback.
func (t *tier) visibleLocked(key uint64) (val uint64, ok bool, err error) {
	if v, hit := t.d.ix.Lookup(key); hit {
		return v, true, nil
	}
	t.deadMu.RLock()
	_, deadHit := t.dead[key]
	t.deadMu.RUnlock()
	if deadHit {
		return 0, false, nil
	}
	if fr := t.frozen.Load(); fr != nil {
		if v, tomb, hit := fr.get(key); hit {
			return v, !tomb, nil
		}
	}
	v, tomb, hit, err := t.segGet(key)
	if err != nil {
		return 0, false, err
	}
	return v, hit && !tomb, nil
}

// rangeMerged streams [lo, hi] ascending across every tier. The volatile
// tiers (memtable, dead set, frozen run) are captured coherently under d.mu
// — capture only, not the scan — then the k-way merge runs against the
// immutable segments under segMu.RLock. The locks are NOT nested (the rule
// that keeps the reader-retirement barrier deadlock-free): the segment set
// consulted may be a flush or compaction ahead of the capture, which is
// harmless because those operations preserve logical content at or below
// the watermark, and any re-surfaced duplicate of captured data is shadowed
// by the capture's higher merge priority.
func (t *tier) rangeMerged(lo, hi uint64, fn func(key, val uint64) bool) {
	if hi < lo {
		return
	}
	t.d.mu.Lock()
	var mem []segment.Entry
	t.d.ix.Range(lo, hi, func(k, v uint64) bool {
		mem = append(mem, segment.Entry{Key: k, Val: v})
		return true
	})
	t.deadMu.RLock()
	for k := range t.dead {
		if k >= lo && k <= hi {
			mem = append(mem, segment.Entry{Key: k, Tomb: true})
		}
	}
	t.deadMu.RUnlock()
	fr := t.frozen.Load()
	t.d.mu.Unlock()

	t.segMu.RLock()
	defer t.segMu.RUnlock()
	set := t.segs.Load()

	// The memtable and dead set are disjoint, so appending tombstones and
	// re-sorting yields one strictly-ascending newest source.
	sort.Slice(mem, func(i, j int) bool { return mem[i].Key < mem[j].Key })

	sources := make([]segment.Iterator, 0, len(set.readers)+2)
	sources = append(sources, segment.NewSliceIter(mem))
	if fr != nil {
		sources = append(sources, segment.NewSliceIter(fr.entries(lo, hi)))
	}
	for _, r := range set.readers {
		m := r.Meta()
		if m.Count == 0 || m.MaxKey < lo || m.MinKey > hi {
			continue
		}
		sources = append(sources, r.Iter(lo, hi))
	}
	m := segment.NewMerge(sources...)
	for m.Next() {
		e := m.Entry()
		if e.Tomb {
			continue
		}
		if !fn(e.Key, e.Val) {
			return
		}
	}
	if err := m.Err(); err != nil {
		t.coldErrs.Add(1)
	}
}

// ---------------------------------------------------------------------------
// Write path (all under d.mu)

// presentLocked reports whether key is visible, consulting every tier in
// tiered mode. Callers hold d.mu.
func (d *DurableIndex) presentLocked(key uint64) (bool, error) {
	if d.tier == nil {
		_, p := d.ix.Lookup(key)
		return p, nil
	}
	_, ok, err := d.tier.visibleLocked(key)
	return ok, err
}

// applyRecordLocked applies one validated, logged record to the in-memory
// state. In tiered mode the orderings are load-bearing for lock-free
// readers: a delete publishes its dead-set tombstone BEFORE removing the key
// from the memtable (a reader that misses the memtable then finds the
// tombstone — never falls through to a stale segment value), and an insert
// lands in the memtable BEFORE clearing a dead-set tombstone (the version
// bump catches the reader that raced past both). Callers hold d.mu.
func (d *DurableIndex) applyRecordLocked(r wal.Record) error {
	if d.tier == nil {
		switch r.Op {
		case wal.OpInsert:
			return d.ix.Insert(r.Key, r.Val)
		case wal.OpDelete:
			return d.ix.Delete(r.Key)
		}
		return nil
	}
	t := d.tier
	switch r.Op {
	case wal.OpInsert:
		if err := d.ix.Insert(r.Key, r.Val); err != nil {
			return err
		}
		t.deadMu.Lock()
		delete(t.dead, r.Key)
		t.deadMu.Unlock()
		t.bumpVer()
		t.liveCount.Add(1)
	case wal.OpDelete:
		t.deadMu.Lock()
		t.dead[r.Key] = struct{}{}
		t.deadMu.Unlock()
		t.bumpVer()
		// The key may live only in frozen/segment tiers; a memtable miss is
		// expected then — the dead-set tombstone above is what shadows it.
		d.ix.inner.Delete(r.Key) //nolint:errcheck
		t.liveCount.Add(-1)
	}
	return nil
}

// maybeSignalFlush nudges the background flusher when the memtable plus
// pending tombstones cross the configured budget. Callers hold d.mu.
func (t *tier) maybeSignalFlush() {
	if int64(t.d.ix.Len()+len(t.dead))*memtableEntryBytes < t.memBytes {
		return
	}
	select {
	case t.flushCh <- struct{}{}:
	default:
	}
}

// ---------------------------------------------------------------------------
// Flush

// rotateWALLocked opens wal-<seq+1> as the live log, recording the current
// commit sequence as its base in the seq.meta sidecar. On failure the old
// log stays live and authoritative — at worst a crash leaves a stray empty
// wal file whose recorded base makes its (zero) records harmless to replay.
// Callers hold d.mu.
func (d *DurableIndex) rotateWALLocked() error {
	newSeq := d.seq + 1
	walPath := filepath.Join(d.dir, walName(newSeq))
	newLog, _, err := wal.Open(walPath, walOptions(d.opts, d.fs), nil)
	if err != nil {
		return err
	}
	if d.seqMeta == nil {
		d.seqMeta = make(map[uint64]uint64)
	}
	d.seqMeta[newSeq] = d.commitSeq.Load()
	if err := d.writeSeqMetaLocked(); err != nil {
		delete(d.seqMeta, newSeq)
		newLog.Close()       //nolint:errcheck
		d.fs.Remove(walPath) //nolint:errcheck
		return err
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		delete(d.seqMeta, newSeq)
		newLog.Close() //nolint:errcheck
		return err
	}
	old := d.log
	d.log = newLog
	d.seq = newSeq
	if old != nil {
		old.Close() //nolint:errcheck
	}
	// A fresh, empty log clears a wedged-WAL degradation, same as the legacy
	// checkpoint rotation.
	d.degraded.Store(false)
	d.walErrv.Store(errBox{})
	return nil
}

// mergeLiveDead merges live pairs and sorted dead-set tombstones into one
// ascending run. The sets are disjoint by invariant; if they ever collide the
// live value wins (failing open to data, not to loss).
func mergeLiveDead(keys, vals, dk []uint64) (mk, mv []uint64, mt []bool) {
	mk = make([]uint64, 0, len(keys)+len(dk))
	mv = make([]uint64, 0, len(keys)+len(dk))
	mt = make([]bool, 0, len(keys)+len(dk))
	i, j := 0, 0
	for i < len(keys) || j < len(dk) {
		switch {
		case j == len(dk) || (i < len(keys) && keys[i] <= dk[j]):
			if j < len(dk) && keys[i] == dk[j] {
				j++
			}
			mk = append(mk, keys[i])
			mv = append(mv, vals[i])
			mt = append(mt, false)
			i++
		default:
			mk = append(mk, dk[j])
			mv = append(mv, 0)
			mt = append(mt, true)
			j++
		}
	}
	return mk, mv, mt
}

// freeze captures the memtable and dead set as an immutable frozen run at
// the current commit sequence, rotates the WAL so the delta has a clean log
// boundary, and resets the volatile tiers. Returns (nil, nil) when there is
// nothing to flush. Callers hold t.tmu.
func (t *tier) freeze() (*frozenRun, error) {
	d := t.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return nil, err
	}
	keys, vals := d.ix.AppendPairs(nil, nil)
	t.deadMu.RLock()
	dk := make([]uint64, 0, len(t.dead))
	for k := range t.dead {
		dk = append(dk, k)
	}
	t.deadMu.RUnlock()
	if len(keys) == 0 && len(dk) == 0 {
		return nil, nil
	}
	sort.Slice(dk, func(i, j int) bool { return dk[i] < dk[j] })
	mk, mv, mt := mergeLiveDead(keys, vals, dk)

	fseq := d.commitSeq.Load()
	live := t.liveCount.Load()
	if err := d.rotateWALLocked(); err != nil {
		return nil, err // clean abort: nothing captured, old log still live
	}
	fr := &frozenRun{keys: mk, vals: mv, tombs: mt, seq: fseq, live: live}
	t.frozen.Store(fr)
	t.bumpVer()
	if err := d.ix.BulkLoad(nil, nil); err != nil {
		// Resetting an index to empty cannot fail; if it somehow does, memory
		// no longer matches the capture and the handle must fail stop.
		d.poisonLocked(fmt.Errorf("tier freeze reset: %w", err))
		return nil, d.fail
	}
	t.deadMu.Lock()
	t.dead = make(map[uint64]struct{})
	t.deadMu.Unlock()
	t.bumpVer()
	return fr, nil
}

// Flush freezes the memtable at the current commit-sequence watermark and
// writes it as one L0 segment, committing via a new manifest generation and
// then garbage-collecting WAL files the watermark has made redundant. A
// failed flush keeps the frozen run in memory (readable, retried by the next
// Flush); only a reader-open failure after the manifest commit poisons the
// handle. In legacy (non-tiered) mode Flush is Checkpoint.
func (d *DurableIndex) Flush() error {
	if d.tier == nil {
		return d.Checkpoint()
	}
	d.tier.tmu.Lock()
	defer d.tier.tmu.Unlock()
	return d.tier.flushLocked()
}

// flushLocked runs one flush attempt. Callers hold t.tmu.
func (t *tier) flushLocked() error {
	d := t.d
	fr := t.frozen.Load()
	if fr == nil {
		var err error
		fr, err = t.freeze()
		if err != nil {
			t.flushErrs.Add(1)
			t.lastFlushErrv.Store(errBox{err})
			return err
		}
		if fr == nil {
			return nil // nothing to flush
		}
	}
	start := time.Now()
	id := t.nextID.Load()
	meta, err := segment.Create(d.fs, d.dir, fr.keys, fr.vals, fr.tombs, id, 0, fr.seq, t.eps)
	if err == nil {
		// Seal the segment's directory entry before the manifest that
		// references it can be written.
		err = d.fs.SyncDir(d.dir)
	}
	if err != nil {
		t.flushErrs.Add(1)
		t.lastFlushErrv.Store(errBox{err})
		return err
	}
	old := t.segs.Load()
	man := &segment.Manifest{
		Gen:        t.gen.Load() + 1,
		FlushedSeq: fr.seq,
		LiveCount:  fr.live,
		NextID:     id + 1,
		Segments:   append(old.metas(), meta),
	}
	if err := segment.WriteManifest(d.fs, d.dir, man); err != nil {
		t.flushErrs.Add(1)
		t.lastFlushErrv.Store(errBox{err})
		return err
	}
	// The manifest is committed: the segment is authoritative. A failure to
	// open it for serving now means memory can no longer match disk.
	r, err := segment.Open(d.fs, filepath.Join(d.dir, segment.FileName(id)), &meta)
	if err != nil {
		d.mu.Lock()
		d.poisonLocked(fmt.Errorf("flush: reopen committed segment: %w", err))
		d.mu.Unlock()
		t.flushErrs.Add(1)
		t.lastFlushErrv.Store(errBox{err})
		return err
	}
	readers := append([]*segment.Reader{r}, old.readers...)
	sortNewestFirst(readers)
	t.segs.Store(&segset{readers: readers})
	t.frozen.Store(nil) // after segs: a reader missing frozen finds the segment
	t.gen.Store(man.Gen)
	t.nextID.Store(man.NextID)
	t.flushedSeq.Store(fr.seq)
	t.flushedLive.Store(fr.live)
	t.flushes.Add(1)
	t.flushedBytes.Add(uint64(meta.Bytes))
	t.lastFlushUS.Store(time.Since(start).Microseconds())
	t.lastFlushErrv.Store(errBox{})

	t.gcLocked()

	// Keep L0 bounded: compact synchronously once the pile is deep enough,
	// the classic LSM write-stall tradeoff.
	if t.l0Count() >= t.compactL0 {
		if err := t.compactLocked(); err != nil {
			t.compactErrs.Add(1)
		}
	}
	return nil
}

func (t *tier) l0Count() int {
	n := 0
	for _, r := range t.segs.Load().readers {
		if r.Meta().Level == 0 {
			n++
		}
	}
	return n
}

// gcLocked removes files the current manifest generation has made garbage.
// Callers hold t.tmu but not d.mu.
func (t *tier) gcLocked() {
	t.d.mu.Lock()
	defer t.d.mu.Unlock()
	t.gcInlineLocked()
}

// ---------------------------------------------------------------------------
// Compaction

// Compact merges every L0 segment, plus each L1 segment overlapping their
// key range, into fresh L1 runs with tombstone elision, committing via a new
// manifest generation. Including every overlapping older run is what makes
// dropping tombstones safe: no shadowed version of an elided key can survive
// below the output. Returns ErrNotTiered on a legacy directory; a no-op when
// there is nothing at L0.
func (d *DurableIndex) Compact() error {
	if d.tier == nil {
		return ErrNotTiered
	}
	d.tier.tmu.Lock()
	defer d.tier.tmu.Unlock()
	return d.tier.compactLocked()
}

// compactLocked runs one compaction. Callers hold t.tmu.
func (t *tier) compactLocked() error {
	d := t.d
	old := t.segs.Load()
	var inputs, untouched []*segment.Reader
	var lo, hi uint64
	for _, r := range old.readers {
		m := r.Meta()
		if m.Level == 0 {
			if len(inputs) == 0 || m.MinKey < lo {
				lo = m.MinKey
			}
			if len(inputs) == 0 || m.MaxKey > hi {
				hi = m.MaxKey
			}
			inputs = append(inputs, r)
		}
	}
	if len(inputs) == 0 {
		return nil
	}
	for _, r := range old.readers {
		m := r.Meta()
		if m.Level == 0 {
			continue
		}
		if m.Count > 0 && m.MaxKey >= lo && m.MinKey <= hi {
			inputs = append(inputs, r)
		} else {
			untouched = append(untouched, r)
		}
	}
	sortNewestFirst(inputs)
	start := time.Now()

	iters := make([]segment.Iterator, len(inputs))
	outSeq := uint64(0)
	total := uint64(0)
	for i, r := range inputs {
		iters[i] = r.Iter(0, ^uint64(0))
		if m := r.Meta(); m.Seq > outSeq {
			outSeq = m.Seq
		}
		total += r.Meta().Count
	}
	ks := make([]uint64, 0, total)
	vs := make([]uint64, 0, total)
	m := segment.NewMerge(iters...)
	for m.Next() {
		e := m.Entry()
		if e.Tomb {
			continue // elision: every older version of e.Key is an input
		}
		ks = append(ks, e.Key)
		vs = append(vs, e.Val)
	}
	if err := m.Err(); err != nil {
		return err
	}

	id := t.nextID.Load()
	var outs []segment.Meta
	cleanup := func() {
		for _, o := range outs {
			d.fs.Remove(filepath.Join(d.dir, segment.FileName(o.ID))) //nolint:errcheck
		}
	}
	for off := 0; off < len(ks); off += compactRunMax {
		end := off + compactRunMax
		if end > len(ks) {
			end = len(ks)
		}
		meta, err := segment.Create(d.fs, d.dir, ks[off:end], vs[off:end], nil, id, 1, outSeq, t.eps)
		if err != nil {
			cleanup()
			return err
		}
		outs = append(outs, meta)
		id++
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		cleanup()
		return err
	}
	man := &segment.Manifest{
		Gen:        t.gen.Load() + 1,
		FlushedSeq: t.flushedSeq.Load(),
		LiveCount:  t.flushedLive.Load(),
		NextID:     id,
	}
	for _, r := range untouched {
		man.Segments = append(man.Segments, r.Meta())
	}
	man.Segments = append(man.Segments, outs...)
	if err := segment.WriteManifest(d.fs, d.dir, man); err != nil {
		cleanup()
		return err
	}
	// Committed. Open the outputs for serving; failure here poisons.
	newReaders := append([]*segment.Reader(nil), untouched...)
	for i := range outs {
		r, err := segment.Open(d.fs, filepath.Join(d.dir, segment.FileName(outs[i].ID)), &outs[i])
		if err != nil {
			d.mu.Lock()
			d.poisonLocked(fmt.Errorf("compaction: reopen committed segment: %w", err))
			d.mu.Unlock()
			return err
		}
		newReaders = append(newReaders, r)
	}
	sortNewestFirst(newReaders)
	t.segs.Store(&segset{readers: newReaders})
	// Barrier: wait out every in-flight cold read that may still hold the
	// retired readers, then close and remove them.
	t.segMu.Lock()
	t.segMu.Unlock() //nolint:staticcheck // empty critical section is the point
	for _, r := range inputs {
		r.Close()                                                   //nolint:errcheck
		d.fs.Remove(filepath.Join(d.dir, segment.FileName(r.Meta().ID))) //nolint:errcheck
	}
	t.gen.Store(man.Gen)
	t.nextID.Store(man.NextID)
	t.compactions.Add(1)
	t.lastCompactUS.Store(time.Since(start).Microseconds())
	for _, o := range outs {
		t.compactBytes.Add(uint64(o.Bytes))
	}
	t.gcLocked()
	return nil
}

// ---------------------------------------------------------------------------
// Background flusher

func (t *tier) flusherLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.stopCh:
			return
		case <-t.flushCh:
		}
		t.tmu.Lock()
		err := t.flushLocked()
		t.tmu.Unlock()
		if err != nil {
			// Backoff: the trigger condition persists, so the next batch will
			// re-signal; sleeping here avoids a hot retry loop against a full
			// disk.
			select {
			case <-t.stopCh:
				return
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
}

// stop terminates the flusher (idempotent) and waits it out. Must be called
// WITHOUT d.mu held: a flush in progress needs d.mu to finish.
func (t *tier) stop() {
	t.stopOnce.Do(func() { close(t.stopCh) })
	t.wg.Wait()
}

// closeReaders drains in-flight cold reads and closes every segment reader.
// Called by DurableIndex.Close after readsClosed flips.
func (t *tier) closeReaders() {
	t.segMu.Lock()
	defer t.segMu.Unlock()
	for _, r := range t.segs.Load().readers {
		r.Close() //nolint:errcheck
	}
}

// ---------------------------------------------------------------------------
// Bulk load

// bulkLoadTiered rebuilds the tier from sorted keys: one fresh L1 segment
// replaces every existing segment, the memtable and dead set reset, and the
// WAL rotates so the (empty) delta has a clean boundary. Bulk data never
// passes through the WAL; the manifest commit is its durability point, and a
// failure before that commit leaves the previous state fully authoritative.
func (t *tier) bulkLoad(keys, vals []uint64) error {
	if vals != nil && len(vals) != len(keys) {
		return ErrMismatchedValues
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return ErrUnsortedKeys
		}
	}
	if vals == nil {
		vals = keys // identity payload, same as the in-memory BulkLoad
	}
	t.tmu.Lock()
	defer t.tmu.Unlock()
	d := t.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}

	id := t.nextID.Load()
	var segMetas []segment.Meta
	if len(keys) > 0 {
		meta, err := segment.Create(d.fs, d.dir, keys, vals, nil, id, 1, d.commitSeq.Load(), t.eps)
		if err != nil {
			return err
		}
		if err := d.fs.SyncDir(d.dir); err != nil {
			d.fs.Remove(filepath.Join(d.dir, segment.FileName(id))) //nolint:errcheck
			return err
		}
		segMetas = append(segMetas, meta)
		id++
	}
	if err := d.rotateWALLocked(); err != nil {
		if len(segMetas) > 0 {
			d.fs.Remove(filepath.Join(d.dir, segment.FileName(segMetas[0].ID))) //nolint:errcheck
		}
		return err
	}
	man := &segment.Manifest{
		Gen:        t.gen.Load() + 1,
		FlushedSeq: d.commitSeq.Load(),
		LiveCount:  int64(len(keys)),
		NextID:     id,
		Segments:   segMetas,
	}
	if err := segment.WriteManifest(d.fs, d.dir, man); err != nil {
		return err
	}
	var readers []*segment.Reader
	for i := range segMetas {
		r, err := segment.Open(d.fs, filepath.Join(d.dir, segment.FileName(segMetas[i].ID)), &segMetas[i])
		if err != nil {
			d.poisonLocked(fmt.Errorf("bulk load: reopen committed segment: %w", err))
			return d.fail
		}
		readers = append(readers, r)
	}

	// Commit in memory: reset volatile tiers, publish the new segment set,
	// retire every old reader.
	if err := d.ix.BulkLoad(nil, nil); err != nil {
		d.poisonLocked(fmt.Errorf("bulk load reset: %w", err))
		return d.fail
	}
	t.deadMu.Lock()
	t.dead = make(map[uint64]struct{})
	t.deadMu.Unlock()
	old := t.segs.Load()
	t.segs.Store(&segset{readers: readers})
	t.frozen.Store(nil)
	t.bumpVer()
	t.segMu.Lock()
	t.segMu.Unlock() //nolint:staticcheck // reader-retirement barrier
	for _, r := range old.readers {
		r.Close() //nolint:errcheck
	}
	t.gen.Store(man.Gen)
	t.nextID.Store(man.NextID)
	t.flushedSeq.Store(man.FlushedSeq)
	t.flushedLive.Store(man.LiveCount)
	t.liveCount.Store(int64(len(keys)))
	t.gcInlineLocked()
	return nil
}

// gcInlineLocked removes files the current manifest generation has made
// garbage: superseded manifests, unreferenced segment files, legacy
// snapshots fully covered by the flushed watermark, and WAL files removable
// because some later rotation's recorded base commit sequence is at or
// under the watermark — never because a checkpoint "succeeded". Best-effort
// (a crash mid-GC leaves garbage the next pass retries). Callers hold t.tmu
// and d.mu.
func (t *tier) gcInlineLocked() {
	d := t.d
	f := t.flushedSeq.Load()
	gen := t.gen.Load()
	live := make(map[uint64]bool)
	for _, r := range t.segs.Load().readers {
		live[r.Meta().ID] = true
	}
	// The newest rotation whose base is covered by the watermark: every WAL
	// file strictly older than it holds only records ≤ F, all of which the
	// segments now carry.
	var cutoff uint64
	for rot, base := range d.seqMeta {
		if base <= f && rot > cutoff {
			cutoff = rot
		}
	}
	entries, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return
	}
	pruned := false
	for _, e := range entries {
		name := e.Name()
		if s, ok := parseSeq(name, walPrefix, walSuffix); ok && s < cutoff && s != d.seq {
			d.fs.Remove(filepath.Join(d.dir, name)) //nolint:errcheck
			delete(d.seqMeta, s)
			pruned = true
		}
		if s, ok := parseSeq(name, snapPrefix, snapSuffix); ok && d.seqMeta[s] <= f {
			d.fs.Remove(filepath.Join(d.dir, name)) //nolint:errcheck
			delete(d.seqMeta, s)
			pruned = true
		}
		if g, ok := segment.ParseManifestName(name); ok && g < gen {
			d.fs.Remove(filepath.Join(d.dir, name)) //nolint:errcheck
		}
		if id, ok := segment.ParseFileName(name); ok && !live[id] && id < t.nextID.Load() {
			d.fs.Remove(filepath.Join(d.dir, name)) //nolint:errcheck
		}
	}
	if pruned {
		d.writeSeqMetaLocked() //nolint:errcheck // best-effort shrink
	}
}
