package chameleon

import (
	"context"
	"fmt"
	"io"
	"slices"

	"chameleon/internal/wal"
)

// This file is the ShardedIndex's replication surface: the per-shard
// projections of the DurableIndex primitives in replseq.go, plus manifest
// adoption so boundary changes ship through the replication stream. Each
// shard is a full DurableIndex with its own commit clock, WAL, and snapshot
// path, so a sharded follower is N independent single-index replication
// streams behind one handle — there is no cross-shard ordering, and none is
// needed: a write's durability story lives entirely within its shard.

// checkShard bounds-checks a shard ordinal from the wire.
func (s *ShardedIndex) checkShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("chameleon: shard %d out of range (have %d)", i, len(s.shards))
	}
	return nil
}

// ShardCommitSeq reports shard i's own commit-sequence clock — the per-shard
// replication cursor (CommitSeq sums these; replication pulls each one
// separately).
func (s *ShardedIndex) ShardCommitSeq(i int) uint64 {
	return s.shards[i].CommitSeq()
}

// SetShardCommitHook installs fn as shard i's commit hook, with
// DurableIndex.SetCommitHook's contract: it runs inside the shard's group
// commit, a non-nil return fails the batch's writers, and it must not call
// back into the index.
func (s *ShardedIndex) SetShardCommitHook(i int, fn func(firstSeq uint64, recs []wal.Record) error) {
	s.shards[i].SetCommitHook(fn)
}

// ReplicateShardBatch applies records the upstream's shard i committed as
// sequences [firstSeq, firstSeq+len(recs)-1], with DurableIndex.
// ReplicateBatch's dup-skip/gap-refuse/divergence-refuse semantics.
func (s *ShardedIndex) ReplicateShardBatch(i int, firstSeq uint64, recs []wal.Record) error {
	if err := s.checkShard(i); err != nil {
		return err
	}
	return s.shards[i].ReplicateBatch(firstSeq, recs)
}

// ShardSnapshotAt streams a consistent snapshot of shard i to w and reports
// the shard commit sequence it is as-of.
func (s *ShardedIndex) ShardSnapshotAt(i int, w io.Writer) (asOfSeq uint64, n int64, err error) {
	if err := s.checkShard(i); err != nil {
		return 0, 0, err
	}
	return s.shards[i].SnapshotAt(w)
}

// RestoreShardSnapshot replaces shard i's contents from a snapshot stream
// and adopts asOfSeq as its commit sequence (checkpointing, so the restored
// state is durable on return).
func (s *ShardedIndex) RestoreShardSnapshot(i int, r io.Reader, asOfSeq uint64) error {
	if err := s.checkShard(i); err != nil {
		return err
	}
	return s.shards[i].RestoreSnapshot(r, asOfSeq)
}

// WaitShardSeq blocks until shard i's commit clock reaches seq (the
// per-shard read-your-writes wait, used by catch-up orchestration).
func (s *ShardedIndex) WaitShardSeq(ctx context.Context, i int, seq uint64) error {
	if err := s.checkShard(i); err != nil {
		return err
	}
	return s.shards[i].WaitSeq(ctx, seq)
}

// ManifestGen reports the durable layout generation: it increments on every
// boundary rewrite (BulkLoad re-shard, AdoptManifest), so a replication
// stream detects boundary changes by comparing one number.
func (s *ShardedIndex) ManifestGen() uint64 { return s.gen.Load() }

// AdoptManifest installs the upstream's boundary array as this follower's
// layout at generation gen, durably (manifest rewrite with the snapshot
// discipline) and atomically for readers (router pointer swap). The shard
// count is fixed at open time: bounds must describe exactly len(shards)
// partitions. Adoption never moves the generation backward: a stale gen is a
// no-op, so re-delivered manifests are harmless. An EQUAL gen with different
// bounds still adopts — a freshly initialized follower and primary both sit
// at generation 1, possibly with different boundary arrays, and the
// upstream's layout wins.
//
// Adoption changes only the routing layout — shard contents are not
// re-partitioned locally. The caller (the replication state machine) must
// follow adoption by re-bootstrapping every shard from the upstream, because
// a boundary change upstream came from a BulkLoad that rewrote shard
// contents without advancing commit clocks.
func (s *ShardedIndex) AdoptManifest(gen uint64, bounds []uint64) error {
	if err := validateBounds(bounds, len(s.shards)); err != nil {
		return err
	}
	s.manMu.Lock()
	defer s.manMu.Unlock()
	if gen < s.gen.Load() || (gen == s.gen.Load() && slices.Equal(bounds, s.Bounds())) {
		return nil
	}
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	if err := writeShardManifest(s.fs, s.dir, shardManifest{
		Version: 1, Shards: len(s.shards), Bounds: b, Gen: gen,
	}); err != nil {
		return err
	}
	s.rt.Store(newShardRouter(b))
	s.gen.Store(gen)
	return nil
}
