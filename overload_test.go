package chameleon

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chameleon/internal/faultfs"
	"chameleon/internal/wal"
)

// waitUntil polls cond until it holds or the deadline passes. The stall-based
// tests use it to wait for the queue/device to reach a known state instead of
// sleeping blind.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadShedFastFail wedges the leader's fsync on a stalled device,
// fills the bounded queue, and checks the shed contract: over-bound mutations
// fail fast with ErrOverloaded, are never logged and never applied (proven by
// reopening), Health keeps answering while the device hangs, and the
// retrainer is paused for the duration of the overload.
func TestOverloadShedFastFail(t *testing.T) {
	dir := t.TempDir()
	stall := faultfs.NewStallFS(faultfs.OS)
	opts := durableOpts()
	opts.MaxPending = 2
	d, err := openDirFS(dir, opts, stall)
	if err != nil {
		t.Fatal(err)
	}
	stall.StallSyncs()

	var leaderErr, followerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); leaderErr = d.Insert(1, 10) }()
	waitUntil(t, "leader stalled in fsync", func() bool { return stall.Stalled() == 1 })
	wg.Add(1)
	go func() { defer wg.Done(); followerErr = d.Insert(2, 20) }()
	waitUntil(t, "follower enqueued", func() bool { return d.Health().QueueDepth == 2 })

	// Queue is at MaxPending and the device is hung: every further mutation
	// must shed immediately, not block.
	const shedTries = 5
	for i := 0; i < shedTries; i++ {
		start := time.Now()
		err := d.Insert(uint64(100+i), 1)
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("over-bound insert = %v, want ErrOverloaded", err)
		}
		if e := time.Since(start); e > time.Second {
			t.Fatalf("shed took %v, want fast-fail", e)
		}
	}
	if err := d.Delete(1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-bound delete = %v, want ErrOverloaded", err)
	}

	h := d.Health()
	if h.State != HealthOK {
		t.Fatalf("overloaded state = %v, want ok (overload is not degradation)", h.State)
	}
	if h.ShedOps != shedTries+1 {
		t.Fatalf("ShedOps = %d, want %d", h.ShedOps, shedTries+1)
	}
	if h.QueueDepth != 2 || h.QueueHighWater != 2 {
		t.Fatalf("QueueDepth/HighWater = %d/%d, want 2/2", h.QueueDepth, h.QueueHighWater)
	}
	if !h.RetrainPaused || h.RetrainPauses == 0 {
		t.Fatalf("retrainer not paused under overload: %+v", h)
	}

	stall.Release()
	wg.Wait()
	if leaderErr != nil || followerErr != nil {
		t.Fatalf("queued writers failed after release: %v / %v", leaderErr, followerErr)
	}
	if err := d.Insert(3, 30); err != nil {
		t.Fatalf("insert after drain = %v", err)
	}
	if h := d.Health(); h.RetrainPaused {
		t.Fatal("retrainer still paused after the queue drained")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Shed ops must be invisible to recovery: neither applied nor logged.
	r, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, k := range []uint64{1, 2, 3} {
		if _, ok := r.Lookup(k); !ok {
			t.Fatalf("acked key %d lost", k)
		}
	}
	for i := 0; i < shedTries; i++ {
		if _, ok := r.Lookup(uint64(100 + i)); ok {
			t.Fatalf("shed key %d reappeared after reopen", 100+i)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("recovered Len = %d, want 3", r.Len())
	}
}

// TestOverloadBlockOnFull checks the backpressure mode: a full queue makes
// writers wait for space instead of shedding, and they complete once the
// device recovers.
func TestOverloadBlockOnFull(t *testing.T) {
	dir := t.TempDir()
	stall := faultfs.NewStallFS(faultfs.OS)
	opts := durableOpts()
	opts.MaxPending = 1
	opts.BlockOnFull = true
	d, err := openDirFS(dir, opts, stall)
	if err != nil {
		t.Fatal(err)
	}
	stall.StallSyncs()

	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); errs[0] = d.Insert(1, 10) }()
	waitUntil(t, "leader stalled", func() bool { return stall.Stalled() == 1 })
	wg.Add(1)
	go func() { defer wg.Done(); errs[1] = d.Insert(2, 20) }() // blocks in admission
	time.Sleep(20 * time.Millisecond)
	if h := d.Health(); h.QueueDepth != 1 {
		t.Fatalf("QueueDepth = %d, want 1 (second writer must be blocked, not admitted)", h.QueueDepth)
	}
	stall.Release()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d = %v, want nil after backpressure release", i, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("recovered Len = %d, want 2", r.Len())
	}
}

// TestDiskFullRetryableAndRecovers drives the WAL into ENOSPC and checks the
// degraded-read-only contract, recovery arm A (operator frees space): no
// acked write is lost, reads keep serving, the same handle accepts writes
// again after AddCapacity, and recovery sees exactly the acked set.
func TestDiskFullRetryableAndRecovers(t *testing.T) {
	dir := t.TempDir()
	q := faultfs.NewQuotaFS(faultfs.OS, 4*wal.FrameSize+wal.FrameSize/2)
	opts := durableOpts()
	opts.Sync = SyncNone
	d, err := openDirFS(dir, opts, q)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 4; k++ {
		if err := d.Insert(k, k*10); err != nil {
			t.Fatalf("insert %d = %v", k, err)
		}
	}
	if err := d.Insert(5, 50); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("over-quota insert = %v, want ErrDiskFull", err)
	}
	h := d.Health()
	if h.State != HealthDegraded {
		t.Fatalf("state after ENOSPC = %v, want degraded", h.State)
	}
	if !errors.Is(h.Err, ErrDiskFull) {
		t.Fatalf("Health.Err = %v, want ErrDiskFull", h.Err)
	}
	if h.DiskFullBatches == 0 {
		t.Fatal("DiskFullBatches not counted")
	}
	// Degraded is read-only, not dead: every read keeps serving.
	if v, ok := d.Lookup(3); !ok || v != 30 {
		t.Fatalf("Lookup(3) = %d,%v while degraded", v, ok)
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d while degraded, want 4", d.Len())
	}
	// Still full: the same clean, retryable failure.
	if err := d.Insert(5, 50); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("retry while full = %v, want ErrDiskFull", err)
	}
	// Operator frees space: the same handle recovers, no reopen.
	q.AddCapacity(1 << 20)
	if err := d.Insert(5, 50); err != nil {
		t.Fatalf("insert after freeing space = %v", err)
	}
	if h := d.Health(); h.State != HealthOK {
		t.Fatalf("state after recovery = %v, want ok", h.State)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 5 {
		t.Fatalf("recovered Len = %d, want 5", r.Len())
	}
	for k := uint64(1); k <= 5; k++ {
		if v, ok := r.Lookup(k); !ok || v != k*10 {
			t.Fatalf("recovered Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

// TestDiskFullCheckpointRotationRecovers exercises recovery arm B: the WAL
// has consumed the disk, the operator can only scrape together enough
// headroom for one snapshot, and it is the checkpoint's log truncation — not
// the headroom — that restores write capacity, on the same handle.
func TestDiskFullCheckpointRotationRecovers(t *testing.T) {
	dir := t.TempDir()
	const initial = int64(1 << 20)
	q := faultfs.NewQuotaFS(faultfs.OS, initial)
	opts := durableOpts()
	opts.Sync = SyncNone
	d, err := openDirFS(dir, opts, q)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i) * 7
	}
	if err := d.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	base := q.Used() // ≈ one snapshot; the WAL is empty right after BulkLoad

	// Shrink the disk to snapshot + a WAL budget, then churn one key until
	// the log fills it. Insert/delete of the same key keeps the index (and
	// so the next snapshot) the same size while the WAL grows two frames per
	// round — the "WAL dwarfs the data" shape where rotation is the cure.
	budget := int64(4000) * wal.FrameSize
	q.AddCapacity(base + budget - initial)
	churn := uint64(999_999)
	present := false
	for {
		if err := d.Insert(churn, 1); err != nil {
			if !errors.Is(err, ErrDiskFull) {
				t.Fatalf("churn insert = %v, want ErrDiskFull eventually", err)
			}
			break
		}
		present = true
		if err := d.Delete(churn); err != nil {
			if !errors.Is(err, ErrDiskFull) {
				t.Fatalf("churn delete = %v, want ErrDiskFull eventually", err)
			}
			break
		}
		present = false
	}
	if h := d.Health(); h.State != HealthDegraded {
		t.Fatalf("state after filling the disk = %v, want degraded", h.State)
	}

	// The operator can free only snapshot-sized headroom — far less than the
	// WAL's footprint. A checkpoint must fit in it, rotate, and GC the log.
	headroom := base + 16384
	q.AddCapacity(headroom)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint with snapshot-sized headroom = %v", err)
	}
	if h := d.Health(); h.State != HealthOK {
		t.Fatalf("state after checkpoint rotation = %v, want ok", h.State)
	}
	// The rotation must have freed substantially more than the operator
	// added — the recovered capacity came from truncating the log.
	capacity := base + budget + headroom
	if free := capacity - q.Used(); free < budget/2 {
		t.Fatalf("checkpoint freed too little: %d bytes free of %d budget", free, budget)
	}

	// Writes flow again on the same handle, well beyond what the headroom
	// alone could hold.
	extra := int(budget / (2 * wal.FrameSize))
	if int64(extra)*wal.FrameSize <= headroom {
		t.Fatalf("test geometry broken: %d frames don't exceed headroom %d", extra, headroom)
	}
	for i := 0; i < extra; i++ {
		if err := d.Insert(uint64(2_000_000+i), 1); err != nil {
			t.Fatalf("insert %d after rotation = %v", i, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want := len(keys) + extra
	if present {
		want++
	}
	if r.Len() != want {
		t.Fatalf("recovered Len = %d, want %d", r.Len(), want)
	}
	for _, k := range keys {
		if _, ok := r.Lookup(k); !ok {
			t.Fatalf("bulk key %d lost across disk-full + rotation", k)
		}
	}
}

// TestInsertCtxCancelWhileQueued cancels a follower whose op is enqueued
// behind a wedged batch but not yet claimed: it must return ctx.Err()
// promptly — while the device is still hung — and the op must have no durable
// effect.
func TestInsertCtxCancelWhileQueued(t *testing.T) {
	dir := t.TempDir()
	stall := faultfs.NewStallFS(faultfs.OS)
	d, err := openDirFS(dir, durableOpts(), stall)
	if err != nil {
		t.Fatal(err)
	}
	stall.StallSyncs()

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); leaderErr = d.Insert(1, 10) }()
	waitUntil(t, "leader stalled", func() bool { return stall.Stalled() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	ctxErr := make(chan error, 1)
	go func() { ctxErr <- d.InsertCtx(ctx, 2, 20) }()
	waitUntil(t, "follower enqueued", func() bool { return d.Health().QueueDepth == 2 })
	cancel()
	select {
	case err := <-ctxErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled InsertCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled InsertCtx did not return while the device was hung")
	}
	if h := d.Health(); h.CancelledOps != 1 {
		t.Fatalf("CancelledOps = %d, want 1", h.CancelledOps)
	}

	stall.Release()
	wg.Wait()
	if leaderErr != nil {
		t.Fatalf("leader = %v", leaderErr)
	}
	if err := d.Insert(3, 30); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Lookup(2); ok {
		t.Fatal("cancelled op left a durable effect")
	}
	if r.Len() != 2 {
		t.Fatalf("recovered Len = %d, want 2", r.Len())
	}
}

// TestInsertCtxClaimedStillAcks cancels an op after the leader has claimed it
// into a committing batch: cancellation must NOT take effect — the call waits
// out the batch and reports the true (durable) outcome. This is the "never a
// third state" half of the cancellation contract: a frame that may already be
// on disk is never reported as cancelled.
func TestInsertCtxClaimedStillAcks(t *testing.T) {
	dir := t.TempDir()
	// The slow layer keeps each released fsync dragging for a beat, closing
	// the race between "previous batch released" and "stall re-armed".
	stall := faultfs.NewStallFS(faultfs.NewSlowFS(faultfs.OS, 0, 30*time.Millisecond))
	d, err := openDirFS(dir, durableOpts(), stall)
	if err != nil {
		t.Fatal(err)
	}
	stall.StallSyncs()

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); leaderErr = d.Insert(1, 10) }()
	waitUntil(t, "leader stalled", func() bool { return stall.Stalled() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	ctxErr := make(chan error, 1)
	go func() { ctxErr <- d.InsertCtx(ctx, 2, 20) }()
	waitUntil(t, "follower enqueued", func() bool { return d.Health().QueueDepth == 2 })

	// Let batch 1 through and immediately re-arm: batch 2 — now containing
	// the claimed follower op — wedges on its own fsync.
	stall.Release()
	stall.StallSyncs()
	waitUntil(t, "second batch stalled", func() bool {
		return stall.Stalled() == 1 && d.Health().QueueDepth == 1
	})

	cancel()
	select {
	case err := <-ctxErr:
		t.Fatalf("claimed op resolved on cancel with %v; must wait for the batch", err)
	case <-time.After(200 * time.Millisecond):
		// Still blocked: correct — the frame may already be durable.
	}
	stall.Release()
	select {
	case err := <-ctxErr:
		if err != nil {
			t.Fatalf("claimed op = %v, want nil (committed)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("claimed op never resolved after release")
	}
	wg.Wait()
	if leaderErr != nil {
		t.Fatalf("leader = %v", leaderErr)
	}
	if h := d.Health(); h.CancelledOps != 0 {
		t.Fatalf("CancelledOps = %d, want 0 (claimed op is not cancellable)", h.CancelledOps)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok := r.Lookup(2); !ok || v != 20 {
		t.Fatalf("claimed+acked op not durable: %d,%v", v, ok)
	}
}

// TestCloseWakesAdmissionWaiters closes the index while a writer is blocked
// in admission (BlockOnFull) behind a wedged batch: the waiter must wake with
// ErrIndexClosed immediately — even though Close itself is still parked
// behind the in-flight batch.
func TestCloseWakesAdmissionWaiters(t *testing.T) {
	dir := t.TempDir()
	stall := faultfs.NewStallFS(faultfs.OS)
	opts := durableOpts()
	opts.MaxPending = 1
	opts.BlockOnFull = true
	d, err := openDirFS(dir, opts, stall)
	if err != nil {
		t.Fatal(err)
	}
	stall.StallSyncs()

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); leaderErr = d.Insert(1, 10) }()
	waitUntil(t, "leader stalled", func() bool { return stall.Stalled() == 1 })

	waiterErr := make(chan error, 1)
	go func() { waiterErr <- d.Insert(2, 20) }() // queue full: blocks for space
	time.Sleep(20 * time.Millisecond)

	closeErr := make(chan error, 1)
	go func() { closeErr <- d.Close() }()

	// The admission waiter must resolve while the device is still hung and
	// Close has not returned.
	select {
	case err := <-waiterErr:
		if !errors.Is(err, ErrIndexClosed) {
			t.Fatalf("admission waiter = %v, want ErrIndexClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admission waiter still blocked after Close")
	}
	select {
	case err := <-closeErr:
		t.Fatalf("Close returned %v before the in-flight batch resolved", err)
	default:
	}

	stall.Release()
	if err := <-closeErr; err != nil {
		t.Fatalf("Close = %v", err)
	}
	wg.Wait()
	if leaderErr != nil {
		t.Fatalf("in-flight leader = %v, want nil (its batch committed before Close)", leaderErr)
	}
	r, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Lookup(1); !ok {
		t.Fatal("acked pre-Close write lost")
	}
	if _, ok := r.Lookup(2); ok {
		t.Fatal("ErrIndexClosed write was applied")
	}
}

// TestCloseErrsBlockedWriters closes the index while a wedged leader holds a
// committing batch and more writers sit queued behind it. Every writer must
// resolve deterministically — nil with the write durable, or ErrIndexClosed
// with no trace of it — and nothing may hang. Run under -race in CI.
func TestCloseErrsBlockedWriters(t *testing.T) {
	dir := t.TempDir()
	stall := faultfs.NewStallFS(faultfs.OS)
	d, err := openDirFS(dir, durableOpts(), stall)
	if err != nil {
		t.Fatal(err)
	}
	stall.StallSyncs()

	const writers = 8
	errs := make([]error, writers)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); errs[0] = d.Insert(0, 0) }()
	waitUntil(t, "leader stalled", func() bool { return stall.Stalled() == 1 })
	for i := 1; i < writers; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = d.Insert(uint64(i), uint64(i)) }(i)
	}
	waitUntil(t, "writers queued", func() bool { return d.Health().QueueDepth == writers })

	var closeDone atomic.Bool
	closeErr := make(chan error, 1)
	go func() {
		err := d.Close()
		closeDone.Store(true)
		closeErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let Close pass the admission gate
	stall.Release()
	wg.Wait()
	if err := <-closeErr; err != nil {
		t.Fatalf("Close = %v", err)
	}

	// A mutation starting after Close returned must fail immediately.
	if !closeDone.Load() {
		t.Fatal("close flag unset after Close returned")
	}
	if err := d.Insert(999, 1); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("post-Close insert = %v, want ErrIndexClosed", err)
	}

	acked := map[uint64]bool{}
	for i, err := range errs {
		switch {
		case err == nil:
			acked[uint64(i)] = true
		case errors.Is(err, ErrIndexClosed):
		default:
			t.Fatalf("writer %d resolved with %v, want nil or ErrIndexClosed", i, err)
		}
	}
	r, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(acked) {
		t.Fatalf("recovered Len = %d, want %d acked", r.Len(), len(acked))
	}
	for k := range acked {
		if _, ok := r.Lookup(k); !ok {
			t.Fatalf("acked key %d lost (acked-then-closed must stay durable)", k)
		}
	}
}

// TestReadSurfacePoisonedAndClosed pins down the read contract on unhealthy
// handles: a poisoned index keeps serving reads (it is read-only, not gone)
// while a closed one returns clean zero values, with Err and Health telling
// the two apart.
func TestReadSurfacePoisonedAndClosed(t *testing.T) {
	// Poisoned: a failing checkpoint during BulkLoad fail-stops the handle.
	dir := t.TempDir()
	d, err := openDirFS(dir, durableOpts(), renameFailFS{faultfs.OS})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.BulkLoad([]uint64{1, 2, 3}, nil); err == nil {
		t.Fatal("BulkLoad with failing checkpoint succeeded")
	}
	if h := d.Health(); h.State != HealthPoisoned || h.Err == nil {
		t.Fatalf("Health after poison = %+v, want poisoned with cause", h)
	}
	if d.Err() == nil {
		t.Fatal("Err() nil on poisoned handle")
	}
	if v, ok := d.Lookup(2); !ok || v != 2 {
		t.Fatalf("poisoned Lookup(2) = %d,%v; reads must keep serving", v, ok)
	}
	if d.Len() != 3 {
		t.Fatalf("poisoned Len = %d, want 3", d.Len())
	}
	if err := d.Insert(9, 9); err == nil || errors.Is(err, ErrIndexClosed) {
		t.Fatalf("poisoned insert = %v, want the sticky poison error", err)
	}

	// Closed: a healthy handle, closed cleanly.
	dir2 := t.TempDir()
	c, err := OpenDir(dir2, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(7, 70); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Lookup(7); ok || v != 0 {
		t.Fatalf("closed Lookup = %d,%v, want zero values", v, ok)
	}
	if c.Len() != 0 || c.Bytes() != 0 || c.Height() != 0 {
		t.Fatal("closed handle leaked non-zero read results")
	}
	called := false
	c.Range(0, ^uint64(0), func(k, v uint64) bool { called = true; return true })
	if called {
		t.Fatal("closed Range visited keys")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("closed Stats = %+v, want zero", s)
	}
	if _, err := c.WriteTo(nopWriter{}); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("closed WriteTo = %v, want ErrIndexClosed", err)
	}
	if !errors.Is(c.Err(), ErrIndexClosed) {
		t.Fatalf("closed Err() = %v, want ErrIndexClosed", c.Err())
	}
	if h := c.Health(); h.State != HealthClosed || !errors.Is(h.Err, ErrIndexClosed) {
		t.Fatalf("closed Health = %+v", h)
	}
	if n := c.WALSize(); n != 0 {
		t.Fatalf("closed WALSize = %d, want 0", n)
	}
	// The data survived the close, of course — it's the handle that's done.
	r, err := OpenDir(dir2, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok := r.Lookup(7); !ok || v != 70 {
		t.Fatalf("reopened Lookup(7) = %d,%v", v, ok)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestWALSizeUnderConcurrentWriters checks that WALSize stays consistent
// while writers race it: always a whole number of frames, never decreasing
// (ops move from queue accounting into the log, counted exactly once), and
// exact once the dust settles.
func TestWALSizeUnderConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts()
	opts.Sync = SyncNone
	d, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var sampleErr atomic.Value
	go func() {
		var prev int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := d.WALSize()
			if s%wal.FrameSize != 0 {
				sampleErr.Store(fmt.Errorf("WALSize %d not a frame multiple", s))
				return
			}
			if s < prev {
				sampleErr.Store(fmt.Errorf("WALSize went backwards: %d after %d", s, prev))
				return
			}
			prev = s
			// Pace the probe: sampling is an observer, not a contender for
			// the commit path's mutex.
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := d.Insert(uint64(w*perWriter+i), 1); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err, _ := sampleErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if got, want := d.WALSize(), int64(writers*perWriter)*wal.FrameSize; got != want {
		t.Fatalf("final WALSize = %d, want %d", got, want)
	}
}

// TestOverloadSoak hammers a bounded queue on a disk that keeps running out
// of space with a mix of plain writes, deadline writes, and checkpoints, then
// proves the global two-state oracle: a key exists after recovery if and only
// if its write returned nil. This is the CI -race soak.
func TestOverloadSoak(t *testing.T) {
	dir := t.TempDir()
	q := faultfs.NewQuotaFS(faultfs.OS, 40*wal.FrameSize)
	opts := durableOpts()
	opts.Sync = SyncNone
	opts.MaxPending = 8
	d, err := openDirFS(dir, opts, q)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 300
	results := make([]error, writers*perWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				key := uint64(1000 + id)
				switch rng.Intn(3) {
				case 0:
					results[id] = d.Insert(key, key)
				case 1:
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(200))*time.Microsecond)
					results[id] = d.InsertCtx(ctx, key, key)
					cancel()
				default:
					ctx, cancel := context.WithCancel(context.Background())
					if rng.Intn(2) == 0 {
						cancel()
					}
					results[id] = d.InsertCtx(ctx, key, key)
					cancel()
				}
				if rng.Intn(64) == 0 {
					time.Sleep(time.Microsecond)
				}
			}
		}(w)
	}
	// The "operator": keeps freeing a dribble of space and checkpointing so
	// the workload oscillates between ok, overloaded, and disk-full.
	opDone := make(chan struct{})
	go func() {
		defer close(opDone)
		for i := 0; i < 200; i++ {
			q.AddCapacity(10 * wal.FrameSize)
			if i%10 == 0 {
				d.Checkpoint() //nolint:errcheck // may legitimately hit ENOSPC
			}
			d.Health()
			time.Sleep(time.Millisecond)
		}
		q.AddCapacity(1 << 20) // open the floodgates so the tail drains
	}()
	wg.Wait()
	<-opDone
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	okCount := 0
	for id, res := range results {
		key := uint64(1000 + id)
		_, exists := r.Lookup(key)
		if res == nil {
			okCount++
			if !exists {
				t.Fatalf("key %d acked nil but missing after recovery", key)
			}
			continue
		}
		if exists {
			t.Fatalf("key %d rejected with %v but exists after recovery", key, res)
		}
		if !errors.Is(res, ErrOverloaded) && !errors.Is(res, ErrDiskFull) &&
			!errors.Is(res, context.Canceled) && !errors.Is(res, context.DeadlineExceeded) {
			t.Fatalf("key %d failed with unexpected error %v", key, res)
		}
	}
	if okCount == 0 {
		t.Fatal("soak acked nothing; workload never made progress")
	}
	if r.Len() != okCount {
		t.Fatalf("recovered Len = %d, want %d acked", r.Len(), okCount)
	}
	t.Logf("soak: %d/%d acked, health=%+v", okCount, len(results), r.Health())
}
