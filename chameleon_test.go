package chameleon_test

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"chameleon"
	"chameleon/internal/dataset"
	"chameleon/internal/rl"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	keys := dataset.Generate(dataset.FACE, 30_000, 1)
	ix := chameleon.New(chameleon.Options{Seed: 7})
	defer ix.Close()
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len = %d", ix.Len())
	}
	for i := 0; i < len(keys); i += 101 {
		if v, ok := ix.Lookup(keys[i]); !ok || v != keys[i] {
			t.Fatalf("Lookup(%d) = %d,%v", keys[i], v, ok)
		}
	}
	if err := ix.Insert(keys[0], 1); !errors.Is(err, chameleon.ErrDuplicateKey) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if err := ix.Delete(keys[0] - 1); !errors.Is(err, chameleon.ErrKeyNotFound) {
		t.Fatalf("absent delete: %v", err)
	}
	s := ix.Stats()
	if s.MaxHeight < 2 || ix.Height() != s.MaxHeight {
		t.Fatalf("heights inconsistent: %+v vs %d", s, ix.Height())
	}
	if ix.Bytes() <= 0 {
		t.Fatal("Bytes not positive")
	}
	if lsn := ix.LocalSkewness(); lsn < 1.3 {
		t.Fatalf("FACE lsn = %v, want high skew", lsn)
	}
}

func TestAutoRetrainerViaOptions(t *testing.T) {
	keys := dataset.Generate(dataset.UDEN, 20_000, 2)
	ix := chameleon.New(chameleon.Options{RetrainEvery: time.Millisecond})
	defer ix.Close()
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	base := keys[len(keys)-1]
	for i := uint64(1); i <= 40_000; i++ {
		if err := ix.Insert(base+i, i); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, _ := ix.RetrainStats(); n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-started retrainer never retrained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRangePublic(t *testing.T) {
	keys := dataset.Uniform(5000, 3)
	ix := chameleon.New(chameleon.Options{})
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	n := 0
	ix.Range(keys[100], keys[200], func(k, v uint64) bool { n++; return true })
	if n != 101 {
		t.Fatalf("range visited %d keys, want 101", n)
	}
}

func TestTrainedAgentsOption(t *testing.T) {
	dir := t.TempDir()
	tcfg := rl.DefaultTSMDPConfig()
	tcfg.Env.BT = 16
	ts := rl.NewTSMDP(tcfg)
	dcfg := rl.DefaultDAREConfig()
	dcfg.BD = 16
	dcfg.L = 4
	dcfg.GA.Generations = 3
	dcfg.GA.Pop = 6
	da := rl.NewDARE(dcfg, 2)
	tsPath := filepath.Join(dir, "t.gob")
	daPath := filepath.Join(dir, "d.gob")
	if err := rl.SaveTSMDP(ts, tsPath); err != nil {
		t.Fatal(err)
	}
	if err := rl.SaveDARE(da, daPath); err != nil {
		t.Fatal(err)
	}
	agents, err := chameleon.LoadAgents(tsPath, daPath)
	if err != nil {
		t.Fatal(err)
	}
	ix := chameleon.New(chameleon.Options{UseTrainedAgents: agents})
	keys := dataset.Uniform(10_000, 4)
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 53 {
		if _, ok := ix.Lookup(keys[i]); !ok {
			t.Fatalf("agent-built index lost key %d", keys[i])
		}
	}
}

func TestLoadStartsRetrainer(t *testing.T) {
	// Regression: Load (via ReadFrom) ignored Options.RetrainEvery, so an
	// index restored from disk silently ran without background retraining
	// even though BulkLoad with the same options would have started it.
	keys := dataset.Generate(dataset.UDEN, 20_000, 5)
	ix := chameleon.New(chameleon.Options{Seed: 3})
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.cham")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := chameleon.Load(path, chameleon.Options{Seed: 3, RetrainEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	// Drift the loaded index so the retrainer has work to do.
	base := keys[len(keys)-1]
	for i := uint64(1); i <= 40_000; i++ {
		if err := loaded.Insert(base+i, i); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, _ := loaded.RetrainStats(); n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retrainer never ran after Load with RetrainEvery set")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConcurrentStartStopClose(t *testing.T) {
	// Start/Stop/Close from many goroutines must not race or deadlock.
	keys := dataset.Uniform(10_000, 8)
	ix := chameleon.New(chameleon.Options{})
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch (g + i) % 3 {
				case 0:
					ix.StartRetrainer(time.Millisecond)
				case 1:
					ix.StopRetrainer()
				default:
					if err := ix.Close(); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	// Foreground traffic while the lifecycle churns.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := keys[len(keys)-1]
		for i := uint64(1); i <= 500; i++ {
			if err := ix.Insert(base+i, i); err != nil {
				t.Error(err)
			}
			ix.Lookup(keys[int(i)%len(keys)])
		}
	}()
	wg.Wait()
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if v, ok := ix.Lookup(keys[0]); !ok || v != keys[0] {
		t.Fatalf("index unusable after lifecycle churn: %d,%v", v, ok)
	}
}

func TestSaveLoadFile(t *testing.T) {
	keys := dataset.Generate(dataset.LOGN, 20_000, 9)
	ix := chameleon.New(chameleon.Options{Seed: 2})
	if err := ix.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.cham")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := chameleon.Load(path, chameleon.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != len(keys) {
		t.Fatalf("Len = %d", loaded.Len())
	}
	if loaded.Stats() != ix.Stats() {
		t.Fatal("structure changed across Save/Load")
	}
	for i := 0; i < len(keys); i += 101 {
		if _, ok := loaded.Lookup(keys[i]); !ok {
			t.Fatalf("key %d lost", keys[i])
		}
	}
	if _, err := chameleon.Load(filepath.Join(t.TempDir(), "nope"), chameleon.Options{}); err == nil {
		t.Fatal("missing file accepted")
	}
}
