package chameleon

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"

	"chameleon/internal/faultfs"
)

// replMetaName is the sidecar persisting the node's replication epoch and
// fenced verdict, next to seq.meta. Fencing that lives only in process
// memory evaporates on restart: a deposed primary that crashed after being
// fenced would come back believing it is still primary and accept writes at
// a stale epoch — exactly the split-brain fencing exists to prevent. The
// sidecar is rewritten (tmp + fsync + rename + dir fsync) on every epoch or
// fence transition, before the transition is acknowledged to anyone, so the
// verdict survives the process.
//
// Absence and corruption both read as "no recorded state" (epoch 0): a
// pre-failover directory starts fresh, and a torn write loses at most the
// newest transition — the node then rejoins at an older epoch and is
// re-fenced by the first peer (or pull reply) carrying the newer one.
const replMetaName = "repl.meta"

type replMeta struct {
	Epoch  uint64 `json:"epoch"`
	Fenced bool   `json:"fenced"`
}

// readReplMeta loads the sidecar, tolerating absence and corruption.
func readReplMeta(fsys faultfs.FS, dir string) (epoch uint64, fenced bool) {
	f, err := fsys.OpenFile(filepath.Join(dir, replMetaName), os.O_RDONLY, 0)
	if err != nil {
		return 0, false
	}
	data, err := io.ReadAll(f)
	f.Close() //nolint:errcheck
	if err != nil {
		return 0, false
	}
	var m replMeta
	if json.Unmarshal(data, &m) != nil {
		return 0, false
	}
	return m.Epoch, m.Fenced
}

// writeReplMeta persists the sidecar with the snapshot discipline, including
// its own directory fsync (unlike seq.meta it is not sealed by a checkpoint's
// rename, so it must make its own rename durable).
func writeReplMeta(fsys faultfs.FS, dir string, epoch uint64, fenced bool) error {
	data, err := json.Marshal(replMeta{Epoch: epoch, Fenced: fenced})
	if err != nil {
		return err
	}
	final := filepath.Join(dir, replMetaName)
	tmp := final + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()        //nolint:errcheck
		fsys.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()        //nolint:errcheck
		fsys.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp) //nolint:errcheck
		return err
	}
	return fsys.SyncDir(dir)
}

// LoadReplState reads the persisted replication epoch and fenced verdict
// (zero values when none was ever saved).
func (d *DurableIndex) LoadReplState() (epoch uint64, fenced bool) {
	return readReplMeta(d.fs, d.dir)
}

// SaveReplState durably records the replication epoch and fenced verdict.
// Callers (the replication state machine) serialize their own calls; the
// write itself is atomic via rename.
func (d *DurableIndex) SaveReplState(epoch uint64, fenced bool) error {
	return writeReplMeta(d.fs, d.dir, epoch, fenced)
}

// LoadReplState reads the sharded handle's persisted replication state. The
// sidecar lives at the root directory: role and epoch are properties of the
// node, not of any one shard.
func (s *ShardedIndex) LoadReplState() (epoch uint64, fenced bool) {
	return readReplMeta(s.fs, s.dir)
}

// SaveReplState durably records the sharded handle's replication state.
func (s *ShardedIndex) SaveReplState(epoch uint64, fenced bool) error {
	return writeReplMeta(s.fs, s.dir, epoch, fenced)
}
