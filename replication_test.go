package chameleon

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"chameleon/internal/wal"
)

// Tests for the DurableIndex replication surface (replseq.go): the
// commit-sequence clock and its durability, ordered replay with divergence
// refusal, snapshot streaming, the WaitSeq read-your-writes primitive, and
// the worst-wins health merge.

func openRepl(t *testing.T, dir string) *DurableIndex {
	t.Helper()
	d, err := OpenDir(dir, DirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCommitSeqSurvivesRestart: the commit clock is the replication anchor,
// so it must come back exact after any shutdown — clean close, a checkpoint
// followed by more WAL tail, and a reopen that replays that tail.
func TestCommitSeqSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d := openRepl(t, dir)
	for k := uint64(1); k <= 50; k++ {
		if err := d.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// WAL tail past the checkpoint: 10 more inserts and 5 deletes.
	for k := uint64(51); k <= 60; k++ {
		if err := d.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 5; k++ {
		if err := d.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.CommitSeq(); got != 65 {
		t.Fatalf("CommitSeq before close = %d, want 65", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openRepl(t, dir)
	defer d2.Close() //nolint:errcheck
	if got := d2.CommitSeq(); got != 65 {
		t.Fatalf("CommitSeq after restart = %d, want 65 (seq.meta + replayed tail)", got)
	}
	// The clock keeps counting from where it left off, not from the live
	// record count (deletes consumed sequences too).
	if err := d2.Insert(1000, 1); err != nil {
		t.Fatal(err)
	}
	if got := d2.CommitSeq(); got != 66 {
		t.Fatalf("CommitSeq after one more insert = %d, want 66", got)
	}
}

// TestCommitSeqLegacyDirectory: a directory from before replication has no
// seq.meta sidecar. Reopening must not fail — the clock falls back to the
// replayed WAL count (documented regression that followers detect), and the
// next checkpoint writes the sidecar so the regression never repeats.
func TestCommitSeqLegacyDirectory(t *testing.T) {
	dir := t.TempDir()
	d := openRepl(t, dir)
	for k := uint64(1); k <= 20; k++ {
		if err := d.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(21); k <= 23; k++ {
		if err := d.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	sidecars, err := filepath.Glob(filepath.Join(dir, "seq*.meta"))
	if err != nil || len(sidecars) == 0 {
		t.Fatalf("no seq sidecar found to remove (err=%v)", err)
	}
	for _, p := range sidecars {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	d2 := openRepl(t, dir)
	if got := d2.CommitSeq(); got != 3 {
		t.Fatalf("CommitSeq without sidecar = %d, want 3 (replayed tail only)", got)
	}
	if d2.Len() != 23 {
		t.Fatalf("Len = %d, want 23 — the data itself is intact", d2.Len())
	}
	// A checkpoint re-seals the sidecar; from here the clock is durable again.
	if err := d2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3 := openRepl(t, dir)
	defer d3.Close() //nolint:errcheck
	if got := d3.CommitSeq(); got != 3 {
		t.Fatalf("CommitSeq after sidecar rewrite = %d, want 3", got)
	}
}

// TestReplicateBatchOrderedAndIdempotent: replay applies in order, advances
// the clock, skips duplicate prefixes on re-delivery, and refuses gaps.
func TestReplicateBatchOrderedAndIdempotent(t *testing.T) {
	d := openRepl(t, t.TempDir())
	defer d.Close() //nolint:errcheck

	recs := []wal.Record{
		{Op: wal.OpInsert, Key: 1, Val: 10},
		{Op: wal.OpInsert, Key: 2, Val: 20},
		{Op: wal.OpDelete, Key: 1},
	}
	if err := d.ReplicateBatch(1, recs); err != nil {
		t.Fatalf("ReplicateBatch: %v", err)
	}
	if got := d.CommitSeq(); got != 3 {
		t.Fatalf("CommitSeq = %d, want 3", got)
	}
	if _, ok := d.Lookup(1); ok {
		t.Fatal("key 1 should have been deleted by seq 3")
	}
	if v, ok := d.Lookup(2); !ok || v != 20 {
		t.Fatalf("Lookup(2) = %d,%v, want 20,true", v, ok)
	}

	// Exact re-delivery is a no-op.
	if err := d.ReplicateBatch(1, recs); err != nil {
		t.Fatalf("re-delivered batch: %v", err)
	}
	if got := d.CommitSeq(); got != 3 {
		t.Fatalf("CommitSeq after re-delivery = %d, want 3", got)
	}

	// Overlapping delivery applies only the fresh suffix.
	overlap := []wal.Record{
		{Op: wal.OpDelete, Key: 1}, // seq 3, duplicate
		{Op: wal.OpInsert, Key: 3, Val: 30},
	}
	if err := d.ReplicateBatch(3, overlap); err != nil {
		t.Fatalf("overlapping batch: %v", err)
	}
	if got := d.CommitSeq(); got != 4 {
		t.Fatalf("CommitSeq after overlap = %d, want 4", got)
	}

	// A gap is refused and nothing changes.
	gap := []wal.Record{{Op: wal.OpInsert, Key: 9, Val: 9}}
	if err := d.ReplicateBatch(7, gap); !errors.Is(err, wal.ErrSeqGap) {
		t.Fatalf("gapped batch: %v, want ErrSeqGap", err)
	}
	if got := d.CommitSeq(); got != 4 {
		t.Fatalf("CommitSeq after refused gap = %d, want 4", got)
	}
}

// TestReplicateBatchDivergenceRefusal: a record that cannot replay cleanly
// proves the histories forked; the whole batch is refused atomically — no
// partial apply, no WAL append, clock unchanged, reads keep working.
func TestReplicateBatchDivergenceRefusal(t *testing.T) {
	cases := []struct {
		name string
		rec  wal.Record
	}{
		{"insert-existing", wal.Record{Op: wal.OpInsert, Key: 1, Val: 99}},
		{"delete-absent", wal.Record{Op: wal.OpDelete, Key: 777}},
		{"unknown-op", wal.Record{Op: 0xEE, Key: 5, Val: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := openRepl(t, t.TempDir())
			defer d.Close() //nolint:errcheck
			if err := d.ReplicateBatch(1, []wal.Record{{Op: wal.OpInsert, Key: 1, Val: 10}}); err != nil {
				t.Fatal(err)
			}
			// Batch = one clean record then the poison pill: atomicity means
			// even the clean one must not land.
			batch := []wal.Record{{Op: wal.OpInsert, Key: 50, Val: 50}, tc.rec}
			err := d.ReplicateBatch(2, batch)
			if !errors.Is(err, ErrReplDivergence) {
				t.Fatalf("divergent batch: %v, want ErrReplDivergence", err)
			}
			if got := d.CommitSeq(); got != 1 {
				t.Fatalf("CommitSeq = %d, want 1 (refusal is atomic)", got)
			}
			if _, ok := d.Lookup(50); ok {
				t.Fatal("clean record from refused batch was applied")
			}
			if v, ok := d.Lookup(1); !ok || v != 10 {
				t.Fatalf("existing state disturbed: Lookup(1) = %d,%v", v, ok)
			}
			if h := d.Health(); h.State != HealthOK {
				t.Fatalf("health after refusal = %v, want ok (index itself is fine)", h.State)
			}
		})
	}
}

// TestReplicateBatchInternalOverlay: divergence validation must account for
// earlier records in the same batch — insert then delete of a brand-new key
// is clean even though the key is absent when validation starts.
func TestReplicateBatchInternalOverlay(t *testing.T) {
	d := openRepl(t, t.TempDir())
	defer d.Close() //nolint:errcheck
	batch := []wal.Record{
		{Op: wal.OpInsert, Key: 4, Val: 40},
		{Op: wal.OpDelete, Key: 4},
		{Op: wal.OpInsert, Key: 4, Val: 41},
	}
	if err := d.ReplicateBatch(1, batch); err != nil {
		t.Fatalf("insert/delete/reinsert in one batch: %v", err)
	}
	if v, ok := d.Lookup(4); !ok || v != 41 {
		t.Fatalf("Lookup(4) = %d,%v, want 41,true", v, ok)
	}
}

// TestSnapshotRoundTripAdoptsSeq: SnapshotAt → RestoreSnapshot moves both
// the data and the commit clock, and the restored clock survives a restart
// (RestoreSnapshot checkpoints, sealing seq.meta).
func TestSnapshotRoundTripAdoptsSeq(t *testing.T) {
	src := openRepl(t, t.TempDir())
	defer src.Close() //nolint:errcheck
	for k := uint64(1); k <= 100; k++ {
		if err := src.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	asOf, n, err := src.SnapshotAt(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if asOf != 100 || n != int64(buf.Len()) {
		t.Fatalf("SnapshotAt = seq %d, %d bytes (buffer %d)", asOf, n, buf.Len())
	}

	dstDir := t.TempDir()
	dst := openRepl(t, dstDir)
	// Pre-existing follower state is replaced wholesale, clock included.
	if err := dst.ReplicateBatch(1, []wal.Record{{Op: wal.OpInsert, Key: 555, Val: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreSnapshot(&buf, asOf); err != nil {
		t.Fatal(err)
	}
	if got := dst.CommitSeq(); got != 100 {
		t.Fatalf("CommitSeq after restore = %d, want 100", got)
	}
	if _, ok := dst.Lookup(555); ok {
		t.Fatal("pre-restore key survived the restore")
	}
	if v, ok := dst.Lookup(42); !ok || v != 126 {
		t.Fatalf("Lookup(42) = %d,%v, want 126,true", v, ok)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openRepl(t, dstDir)
	defer d2.Close() //nolint:errcheck
	if got := d2.CommitSeq(); got != 100 {
		t.Fatalf("CommitSeq after restore+restart = %d, want 100", got)
	}
	if d2.Len() != 100 {
		t.Fatalf("Len after restore+restart = %d, want 100", d2.Len())
	}
}

// TestWaitSeqWakesOnCommitAndClose: WaitSeq returns nil once the clock
// reaches the target, honors its context, and unblocks with the terminal
// error when the index closes underneath it — never a hang.
func TestWaitSeqWakesOnCommitAndClose(t *testing.T) {
	d := openRepl(t, t.TempDir())
	if err := d.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	// Already satisfied: immediate nil.
	if err := d.WaitSeq(context.Background(), 1); err != nil {
		t.Fatalf("WaitSeq(1) with seq 1 applied: %v", err)
	}

	// Satisfied by a later commit.
	done := make(chan error, 1)
	go func() { done <- d.WaitSeq(context.Background(), 2) }()
	time.Sleep(20 * time.Millisecond)
	if err := d.Insert(2, 2); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitSeq(2) after commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitSeq(2) did not wake on commit")
	}

	// Context expiry.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := d.WaitSeq(ctx, 999); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitSeq(999) under deadline: %v", err)
	}

	// Close wakes a parked waiter with the terminal error.
	go func() { done <- d.WaitSeq(context.Background(), 999) }()
	time.Sleep(20 * time.Millisecond)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrIndexClosed) {
			t.Fatalf("WaitSeq across Close: %v, want ErrIndexClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitSeq hung across Close")
	}
}

// TestReplHealthState pins the replication-health → state mapping:
// divergence is poison-grade and permanent, a stalled or disconnected link
// is degraded, everything else ok.
func TestReplHealthState(t *testing.T) {
	cases := []struct {
		name string
		r    ReplHealth
		want HealthState
	}{
		{"primary-ok", ReplHealth{Role: RolePrimary, Connected: true}, HealthOK},
		{"follower-ok", ReplHealth{Role: RoleFollower, Connected: true}, HealthOK},
		{"follower-disconnected", ReplHealth{Role: RoleFollower}, HealthDegraded},
		{"primary-stalled", ReplHealth{Role: RolePrimary, Stalled: true}, HealthDegraded},
		{"diverged", ReplHealth{Role: RoleFollower, Connected: true, Diverged: true}, HealthPoisoned},
		{"diverged-beats-stalled", ReplHealth{Role: RoleFollower, Stalled: true, Diverged: true}, HealthPoisoned},
		{"fenced-ok", ReplHealth{Role: RoleFenced, Connected: true}, HealthOK},
	}
	for _, tc := range cases {
		if got := tc.r.State(); got != tc.want {
			t.Errorf("%s: State() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMergeReplHealth pins the worst-wins fold of replication state into
// index health (satellite: health aggregation with replication fields).
func TestMergeReplHealth(t *testing.T) {
	poisonErr := errors.New("boom")
	cases := []struct {
		name     string
		h        Health
		r        ReplHealth
		want     HealthState
		wantErr  error
		keepsErr bool // h.Err must come through unchanged
	}{
		{"ok+ok", Health{State: HealthOK}, ReplHealth{Role: RolePrimary, Connected: true}, HealthOK, nil, false},
		{"ok+stalled", Health{State: HealthOK}, ReplHealth{Role: RolePrimary, Stalled: true}, HealthDegraded, ErrReplicaLagging, false},
		{"ok+diverged", Health{State: HealthOK}, ReplHealth{Diverged: true}, HealthPoisoned, ErrReplDivergence, false},
		{"degraded+ok", Health{State: HealthDegraded, Err: ErrDiskFull}, ReplHealth{Role: RolePrimary, Connected: true}, HealthDegraded, ErrDiskFull, true},
		{"degraded+stalled-keeps-index-err", Health{State: HealthDegraded, Err: ErrDiskFull}, ReplHealth{Stalled: true}, HealthDegraded, ErrDiskFull, true},
		{"degraded+diverged", Health{State: HealthDegraded}, ReplHealth{Diverged: true}, HealthPoisoned, ErrReplDivergence, false},
		{"poisoned-untouched", Health{State: HealthPoisoned, Err: poisonErr}, ReplHealth{Role: RolePrimary, Connected: true}, HealthPoisoned, poisonErr, true},
		{"closed-untouched", Health{State: HealthClosed}, ReplHealth{Diverged: true}, HealthClosed, nil, false},
	}
	for _, tc := range cases {
		got := MergeReplHealth(tc.h, tc.r)
		if got.State != tc.want {
			t.Errorf("%s: State = %v, want %v", tc.name, got.State, tc.want)
		}
		if tc.wantErr != nil && !errors.Is(got.Err, tc.wantErr) {
			t.Errorf("%s: Err = %v, want %v", tc.name, got.Err, tc.wantErr)
		}
		if tc.wantErr == nil && got.Err != nil {
			t.Errorf("%s: Err = %v, want nil", tc.name, got.Err)
		}
	}
}
