package chameleon

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"chameleon/internal/faultfs"
)

// shardOpts mirrors durableOpts for the sharded layer: cheap construction,
// deterministic seed.
func shardOpts(shards int) ShardDirOptions {
	return ShardDirOptions{DirOptions: durableOpts(), Shards: shards}
}

func TestShardedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := shardOpts(4)
	opts.Boundaries = []uint64{1000, 2000, 3000}
	s, err := OpenShardedDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Keys landing in every shard, including each boundary key (which must
	// route to the upper shard) and the extremes of the key space.
	keys := []uint64{0, 5, 999, 1000, 1001, 1999, 2000, 2500, 3000, 3500, ^uint64(0)}
	for i, k := range keys {
		if err := s.Insert(k, uint64(i)+100); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if err := s.Delete(2500); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if s.Len() != len(keys)-1 {
		t.Fatalf("Len = %d, want %d", s.Len(), len(keys)-1)
	}
	for i, k := range keys {
		v, ok := s.Lookup(k)
		if k == 2500 {
			if ok {
				t.Fatalf("deleted key %d still present", k)
			}
			continue
		}
		if !ok || v != uint64(i)+100 {
			t.Fatalf("Lookup(%d) = %d,%v want %d,true", k, v, ok, uint64(i)+100)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !IsShardedDir(dir) {
		t.Fatal("IsShardedDir = false after sharded open")
	}

	// Reopen asking for a different layout: the manifest must win — the data
	// on disk is partitioned by the stored boundaries, not the new request.
	re, err := OpenShardedDir(dir, shardOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close() //nolint:errcheck
	if re.Shards() != 4 {
		t.Fatalf("reopen Shards = %d, manifest says 4", re.Shards())
	}
	if got := re.Bounds(); len(got) != 3 || got[0] != 1000 || got[1] != 2000 || got[2] != 3000 {
		t.Fatalf("reopen Bounds = %v, want [1000 2000 3000]", got)
	}
	for i, k := range keys {
		if k == 2500 {
			continue
		}
		if v, ok := re.Lookup(k); !ok || v != uint64(i)+100 {
			t.Fatalf("reopen Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	// Global Range must be ascending across shard boundaries.
	var got []uint64
	re.Range(0, ^uint64(0), func(k, _ uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(keys)-1 {
		t.Fatalf("Range yielded %d keys, want %d", len(got), len(keys)-1)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("Range not ascending across shards: %v", got)
	}
}

// TestShardRouterBoundaries pins the routing contract: a boundary key belongs
// to the upper shard, keys below the first boundary to shard 0, and the
// maximum key always to the last shard.
func TestShardRouterBoundaries(t *testing.T) {
	r := newShardRouter([]uint64{100, 200, 300})
	cases := []struct {
		key  uint64
		want int
	}{
		{0, 0}, {99, 0},
		{100, 1}, {150, 1}, {199, 1},
		{200, 2}, {299, 2},
		{300, 3}, {1 << 40, 3}, {^uint64(0), 3},
	}
	for _, c := range cases {
		if got := r.route(c.key); got != c.want {
			t.Errorf("route(%d) = %d, want %d", c.key, got, c.want)
		}
		if got := r.routeLearned(c.key); got != c.want {
			t.Errorf("routeLearned(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

// TestShardRouterEquivalence: the learned router must agree with binary
// search everywhere — it is benchmarked as an alternative implementation of
// the same function, so any disagreement voids the measurement.
func TestShardRouterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{2, 4, 16, 64, 256} {
		bounds := make([]uint64, 0, n-1)
		used := map[uint64]bool{}
		for len(bounds) < n-1 {
			b := rng.Uint64()
			if b != 0 && !used[b] {
				used[b] = true
				bounds = append(bounds, b)
			}
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		r := newShardRouter(bounds)
		probe := func(key uint64) {
			if a, b := r.route(key), r.routeLearned(key); a != b {
				t.Fatalf("n=%d key=%d: route=%d routeLearned=%d", n, key, a, b)
			}
		}
		probe(0)
		probe(^uint64(0))
		for _, b := range bounds {
			probe(b)
			probe(b - 1)
			probe(b + 1)
		}
		for i := 0; i < 10000; i++ {
			probe(rng.Uint64())
		}
	}
}

// BenchmarkShardRouter backs the router measurement quoted in the
// shardRouter doc comment. Two boundary shapes: equi-width (the learned
// router's best case — interpolation predicts exactly) and equi-depth over
// locally skewed clusters (the shape this system actually produces, where
// interpolation mispredicts and pays a linear correction scan).
func BenchmarkShardRouter(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{4, 16, 64} {
		uniform := make([]uint64, n-1)
		for i := range uniform {
			uniform[i] = uint64(i+1) * (^uint64(0) / uint64(n))
		}
		// Skewed: boundaries equi-depth over two dense clusters at the
		// extremes of the key space, probed by keys from those clusters.
		clustered := make([]uint64, 0, 4096)
		for i := 0; i < 2048; i++ {
			clustered = append(clustered, uint64(i)*64)
			clustered = append(clustered, ^uint64(0)-uint64(i)*64)
		}
		sort.Slice(clustered, func(i, j int) bool { return clustered[i] < clustered[j] })
		skewed := equiDepthBounds(clustered, n)

		keys := make([]uint64, 1024)
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		skewKeys := make([]uint64, 1024)
		for i := range skewKeys {
			skewKeys[i] = clustered[rng.Intn(len(clustered))]
		}
		for _, bench := range []struct {
			shape  string
			r      *shardRouter
			probes []uint64
		}{
			{"uniform", newShardRouter(uniform), keys},
			{"skewed", newShardRouter(skewed), skewKeys},
		} {
			b.Run(fmt.Sprintf("binary/%s/%dshards", bench.shape, n), func(b *testing.B) {
				var sink int
				for i := 0; i < b.N; i++ {
					sink += bench.r.route(bench.probes[i&1023])
				}
				_ = sink
			})
			b.Run(fmt.Sprintf("learned/%s/%dshards", bench.shape, n), func(b *testing.B) {
				var sink int
				for i := 0; i < b.N; i++ {
					sink += bench.r.routeLearned(bench.probes[i&1023])
				}
				_ = sink
			})
		}
	}
}

// TestStitchRangeEarlyStop pins the cross-shard early-stop contract through
// an injected scan: once fn returns false, no later shard may be visited —
// not even to be asked for zero keys.
func TestStitchRangeEarlyStop(t *testing.T) {
	rt := newShardRouter([]uint64{100, 200, 300}) // 4 shards
	shardKeys := [][]uint64{{10, 20}, {110, 120}, {210, 220}, {310, 320}}
	var visited []int
	scan := func(i int, fn func(k, v uint64) bool) {
		visited = append(visited, i)
		for _, k := range shardKeys[i] {
			if !fn(k, k) {
				return
			}
		}
	}

	// Stop after 3 keys: the scan must visit shards 0 and 1 and never touch 2
	// or 3.
	var got []uint64
	stitchRange(rt, 0, ^uint64(0), func(k, _ uint64) bool {
		got = append(got, k)
		return len(got) < 3
	}, scan)
	if want := []uint64{10, 20, 110}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	if fmt.Sprint(visited) != fmt.Sprint([]int{0, 1}) {
		t.Fatalf("visited shards %v, want [0 1]", visited)
	}

	// Stop on the very first key: only shard 0 is visited.
	visited = nil
	stitchRange(rt, 0, ^uint64(0), func(_, _ uint64) bool { return false }, scan)
	if fmt.Sprint(visited) != fmt.Sprint([]int{0}) {
		t.Fatalf("visited shards %v, want [0]", visited)
	}

	// lo > hi visits nothing.
	visited = nil
	stitchRange(rt, 10, 5, func(_, _ uint64) bool { return true }, scan)
	if len(visited) != 0 {
		t.Fatalf("lo > hi visited %v", visited)
	}

	// A sub-range confined to one middle shard visits exactly that shard.
	visited = nil
	stitchRange(rt, 110, 120, func(_, _ uint64) bool { return true }, scan)
	if fmt.Sprint(visited) != fmt.Sprint([]int{1}) {
		t.Fatalf("visited shards %v, want [1]", visited)
	}
}

// TestShardedRangeProperty checks the stitched Range against a single-index
// oracle while concurrent writers mutate a disjoint part of the key space:
// every stable key in [lo, hi] appears exactly once in ascending order, and
// anything else the scan surfaces must belong to the writers' key space.
func TestShardedRangeProperty(t *testing.T) {
	dir := t.TempDir()
	opts := shardOpts(4)
	opts.Boundaries = []uint64{4000, 8000, 12000}
	s, err := OpenShardedDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck

	// Stable keys: even numbers, loaded before any writer starts. Volatile
	// keys: odd numbers, inserted/deleted concurrently.
	var stable []uint64
	for k := uint64(0); k < 16000; k += 2 {
		stable = append(stable, k)
	}
	if err := s.BulkLoad(stable, nil); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(8000))*2 + 1 // odd → never stable
				if rng.Intn(2) == 0 {
					s.Insert(k, k) //nolint:errcheck
				} else {
					s.Delete(k) //nolint:errcheck
				}
			}
		}(w)
	}

	oracle := func(lo, hi uint64) []uint64 {
		var want []uint64
		for _, k := range stable {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		return want
	}
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 50; iter++ {
		lo := uint64(rng.Intn(16000))
		hi := lo + uint64(rng.Intn(8000))
		var got []uint64
		last := uint64(0)
		first := true
		s.Range(lo, hi, func(k, _ uint64) bool {
			if k < lo || k > hi {
				t.Errorf("Range(%d,%d) leaked key %d", lo, hi, k)
			}
			if !first && k <= last {
				t.Errorf("Range(%d,%d) not strictly ascending: %d after %d", lo, hi, k, last)
			}
			first, last = false, k
			if k%2 == 0 {
				got = append(got, k)
			}
			return true
		})
		if want := oracle(lo, hi); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("Range(%d,%d) stable keys = %d items, want %d", lo, hi, len(got), len(want))
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardedBulkLoadRebalances: BulkLoad re-selects equi-depth boundaries
// over the new data, so heavily skewed keys still spread across shards
// instead of piling into whichever shard owned the hot range before.
func TestShardedBulkLoadRebalances(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedDir(dir, shardOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck

	// All keys inside one equi-width quarter of the key space: without
	// re-selection three shards would be empty.
	const n = 4000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 3
	}
	if err := s.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i, sh := range s.shards {
		if l := sh.Len(); l < n/8 || l > n/2 {
			t.Fatalf("shard %d holds %d keys after equi-depth reload (want ≈%d)", i, l, n/4)
		}
	}
	// The new layout must be durable: reopen and spot-check.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenShardedDir(dir, shardOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close() //nolint:errcheck
	for _, k := range []uint64{0, 3, 3 * (n - 1), 3 * (n / 2)} {
		if v, ok := re.Lookup(k); !ok || v != k {
			t.Fatalf("reopen Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

// TestShardedMigration: opening an existing unsharded directory sharded must
// carry every key over, pick equi-depth boundaries from the data, and remove
// the legacy top-level files once the manifest is durable.
func TestShardedMigration(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Locally skewed data: two dense clusters far apart — the case where
	// equi-width boundaries would leave shards empty.
	const n = 1200
	for i := uint64(0); i < n/2; i++ {
		if err := d.Insert(1_000_000+i, i); err != nil {
			t.Fatal(err)
		}
		if err := d.Insert(9_000_000_000+i, i+7); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenShardedDir(dir, shardOpts(4))
	if err != nil {
		t.Fatalf("migration: %v", err)
	}
	if s.Len() != n {
		t.Fatalf("migrated Len = %d, want %d", s.Len(), n)
	}
	for i := uint64(0); i < n/2; i++ {
		if v, ok := s.Lookup(1_000_000 + i); !ok || v != i {
			t.Fatalf("migrated Lookup(%d) = %d,%v", 1_000_000+i, v, ok)
		}
		if v, ok := s.Lookup(9_000_000_000 + i); !ok || v != i+7 {
			t.Fatalf("migrated Lookup(%d) = %d,%v", 9_000_000_000+i, v, ok)
		}
	}
	// Equi-depth boundaries: every shard holds a meaningful slice of the
	// skewed data.
	for i, sh := range s.shards {
		if l := sh.Len(); l < n/8 || l > n/2 {
			t.Fatalf("shard %d holds %d of %d keys — boundaries not equi-depth", i, l, n)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The legacy top-level snapshot/WAL files are gone; only the manifest and
	// shard directories remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			t.Fatalf("legacy snapshot %s survived migration", e.Name())
		}
		if _, ok := parseSeq(e.Name(), walPrefix, walSuffix); ok {
			t.Fatalf("legacy WAL %s survived migration", e.Name())
		}
	}

	// Reopening sees the sharded layout, not a re-migration.
	re, err := OpenShardedDir(dir, shardOpts(2)) // ignored: manifest wins
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close() //nolint:errcheck
	if re.Shards() != 4 || re.Len() != n {
		t.Fatalf("reopen: %d shards, %d keys; want 4, %d", re.Shards(), re.Len(), n)
	}
}

// TestShardedHealthAggregation: counters sum across shards, the state is the
// worst across shards, and a fully closed sharded index reports closed.
func TestShardedHealthAggregation(t *testing.T) {
	dir := t.TempDir()
	opts := shardOpts(2)
	opts.Boundaries = []uint64{1000}
	s, err := OpenShardedDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10; k++ {
		if err := s.Insert(k, k); err != nil { // all land in shard 0
			t.Fatal(err)
		}
		if err := s.Insert(100_000+k, k); err != nil { // all land in shard 1
			t.Fatal(err)
		}
	}
	h := s.Health()
	if h.State != HealthOK {
		t.Fatalf("State = %v, want ok", h.State)
	}
	per := s.ShardHealths()
	if len(per) != 2 {
		t.Fatalf("ShardHealths len = %d", len(per))
	}
	if want := per[0].BatchedOps + per[1].BatchedOps; h.BatchedOps != want {
		t.Fatalf("aggregate BatchedOps = %d, want %d", h.BatchedOps, want)
	}
	if h.BatchedOps != 20 {
		t.Fatalf("BatchedOps = %d, want 20", h.BatchedOps)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Health().State; got != HealthClosed {
		t.Fatalf("State after Close = %v, want closed", got)
	}
	if err := s.Err(); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("Err after Close = %v, want ErrIndexClosed", err)
	}
}

// TestShardedCrashMatrix is the sharded counterpart of TestDurableCrashMatrix:
// a workload spanning all four shards — with a scatter-gather checkpoint
// mid-stream — is killed at every interesting step with every tear mode, and
// recovery must preserve each shard's acked writes independently. The
// interesting new failure geometry is a crash between one shard's commit and
// another's: the acked shard's WAL must still carry its write, and the
// unacked shard must not surface a phantom.
func TestShardedCrashMatrix(t *testing.T) {
	total := runShardedCrashWorkload(t, t.TempDir(), 1<<40, 0, nil)
	if total < 40 {
		t.Fatalf("workload consumed only %d steps — matrix degenerate", total)
	}
	// The sharded workload consumes several times the steps of the unsharded
	// one (four directories' worth of file creation); stride the matrix to
	// keep the full run minutes-scale and the short run seconds-scale.
	stride := int64(3)
	if testing.Short() {
		stride = 17
	}
	for k := int64(0); k < total; k += stride {
		dir := t.TempDir()
		acked := make(map[uint64]ackState)
		runShardedCrashWorkload(t, dir, k, int(k%3), acked)
		verifyShardedRecovered(t, dir, k, acked)
	}
}

// shardedCrashBounds spread the crash workload's keys across four shards.
var shardedCrashBounds = []uint64{1 << 16, 1 << 32, 1 << 48}

// shardedCrashKey places logical key i in shard (i%4): consecutive operations
// alternate shards, so every crash point falls between two different shards'
// commits.
func shardedCrashKey(i uint64) uint64 {
	base := []uint64{0, 1 << 16, 1 << 32, 1 << 48}[i%4]
	return base + 100 + i
}

func runShardedCrashWorkload(t *testing.T, dir string, budget int64, tear int, acked map[uint64]ackState) int64 {
	t.Helper()
	cfs := faultfs.NewCrashFS(faultfs.OS, budget)
	cfs.Tear = tear
	opts := shardOpts(4)
	opts.Boundaries = shardedCrashBounds
	s, err := openShardedDirFS(dir, opts, cfs)
	if err != nil {
		return cfs.Steps() // crashed during init: nothing acked
	}
	ack := func(key, val uint64, present bool, err error) {
		if acked == nil {
			return
		}
		if err != nil {
			if st, ok := acked[key]; ok {
				st.unstable = true
				acked[key] = st
			}
			return
		}
		acked[key] = ackState{val: val, present: present}
	}
	for i := uint64(0); i < 8; i++ {
		k := shardedCrashKey(i)
		ack(k, i+1, true, s.Insert(k, i+1))
	}
	ack(shardedCrashKey(1), 0, false, s.Delete(shardedCrashKey(1)))
	s.Checkpoint() //nolint:errcheck // a failed checkpoint must not lose anything either
	for i := uint64(8); i < 16; i++ {
		k := shardedCrashKey(i)
		ack(k, i+50, true, s.Insert(k, i+50))
	}
	ack(shardedCrashKey(2), 0, false, s.Delete(shardedCrashKey(2)))
	ack(shardedCrashKey(8), 0, false, s.Delete(shardedCrashKey(8)))
	s.Close() //nolint:errcheck
	return cfs.Steps()
}

func verifyShardedRecovered(t *testing.T, dir string, k int64, acked map[uint64]ackState) {
	t.Helper()
	// Recovery must succeed whether the crash hit before the manifest (empty
	// or partial layout → re-init) or after (per-shard WAL replay).
	opts := shardOpts(4)
	opts.Boundaries = shardedCrashBounds
	re, err := OpenShardedDir(dir, opts)
	if err != nil {
		t.Fatalf("crash@%d: recovery failed: %v", k, err)
	}
	defer re.Close() //nolint:errcheck
	for key, st := range acked {
		if st.unstable {
			continue
		}
		v, ok := re.Lookup(key)
		if st.present && !ok {
			t.Fatalf("crash@%d: acked key %d lost", k, key)
		}
		if st.present && v != st.val {
			t.Fatalf("crash@%d: acked key %d has value %d, want %d", k, key, v, st.val)
		}
		if !st.present && ok {
			t.Fatalf("crash@%d: acked delete of %d undone", k, key)
		}
	}
	// No phantoms: every recovered key was attempted by the workload.
	attempted := make(map[uint64]bool)
	for i := uint64(0); i < 16; i++ {
		attempted[shardedCrashKey(i)] = true
	}
	re.Range(0, ^uint64(0), func(key, _ uint64) bool {
		if !attempted[key] {
			t.Fatalf("crash@%d: phantom key %d", k, key)
		}
		return true
	})
}

// TestShardedSoak hammers a sharded index from concurrent writers with an
// exists-iff-acked oracle and one scatter-gather checkpoint mid-run, then
// reopens and verifies every acknowledged write survived. CI runs it under
// -race; the shards share nothing, so any cross-shard data race is a bug in
// the router or the aggregation paths.
func TestShardedSoak(t *testing.T) {
	dir := t.TempDir()
	opts := shardOpts(4)
	opts.Sync = SyncNone // durability comes from Close; the soak is about races
	s, err := OpenShardedDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 8
		perW    = 300
	)
	ackedVals := make([]map[uint64]uint64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		ackedVals[w] = make(map[uint64]uint64, perW)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 31))
			for i := 0; i < perW; i++ {
				// Spread each writer across the whole key space so every
				// shard sees every writer.
				k := rng.Uint64()&^uint64(writers-1) | uint64(w) // low bits = writer id → disjoint
				v := uint64(i) + 1
				if err := s.Insert(k, v); err == nil {
					ackedVals[w][k] = v
				}
				if i%50 == 25 {
					s.Range(k, k+1<<40, func(_, _ uint64) bool { return true })
				}
			}
		}(w)
	}
	// One mid-run scatter-gather checkpoint racing the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Checkpoint(); err != nil {
			t.Errorf("mid-run Checkpoint: %v", err)
		}
	}()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenShardedDir(dir, shardOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close() //nolint:errcheck
	total := 0
	for w := 0; w < writers; w++ {
		total += len(ackedVals[w])
		for k, v := range ackedVals[w] {
			got, ok := re.Lookup(k)
			if !ok || got != v {
				t.Fatalf("writer %d: acked key %d = %d,%v want %d,true", w, k, got, ok, v)
			}
		}
	}
	if re.Len() != total {
		t.Fatalf("reopen Len = %d, acked %d (exists-iff-acked violated)", re.Len(), total)
	}
}

// TestShardedBoundsValidation: malformed explicit boundaries are rejected
// before any shard directory is created.
func TestShardedBoundsValidation(t *testing.T) {
	dir := t.TempDir()
	opts := shardOpts(4)
	opts.Boundaries = []uint64{100, 100, 300} // not strictly ascending
	if _, err := OpenShardedDir(dir, opts); err == nil {
		t.Fatal("non-ascending boundaries accepted")
	}
	opts.Boundaries = []uint64{100} // wrong count
	if _, err := OpenShardedDir(dir, opts); err == nil {
		t.Fatal("wrong boundary count accepted")
	}
	// The failed opens must not have committed a layout.
	if IsShardedDir(dir) {
		t.Fatal("manifest written despite rejected boundaries")
	}
}

// TestShardedManifestCorruption: a corrupt manifest must fail the open loudly
// rather than silently re-initializing over existing shard data.
func TestShardedManifestCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedDir(dir, shardOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(7, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, shardManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardedDir(dir, shardOpts(2)); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}
