package chameleon

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"chameleon/internal/faultfs"
	"chameleon/internal/wal"
)

// durableOpts keeps construction cheap: recovery in the crash matrix rebuilds
// the index hundreds of times.
func durableOpts() DirOptions {
	return DirOptions{Options: Options{Seed: 7}}
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 5_000)
	for i := range keys {
		keys[i] = uint64(i) * 17
	}
	if err := d.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k < 400; k += 2 {
		if err := d.Insert(k<<32, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete(keys[10]); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(keys[11], 1); err != ErrDuplicateKey {
		t.Fatalf("duplicate insert: %v", err)
	}
	if err := d.Delete(uint64(1) << 60); err != ErrKeyNotFound {
		t.Fatalf("missing delete: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(1, 1); err != ErrIndexClosed {
		t.Fatalf("insert after close: %v", err)
	}

	// Reopen: bulk keys (checkpointed), WAL inserts, and the delete must all
	// have survived.
	re, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i, k := range keys {
		_, ok := re.Lookup(k)
		if i == 10 {
			if ok {
				t.Fatalf("deleted key %d resurrected", k)
			}
			continue
		}
		if !ok {
			t.Fatalf("bulk key %d lost", k)
		}
	}
	for k := uint64(1); k < 400; k += 2 {
		if v, ok := re.Lookup(k << 32); !ok || v != k {
			t.Fatalf("walled insert %d lost (%d,%v)", k<<32, v, ok)
		}
	}
	if re.Len() != len(keys)-1+200 {
		t.Fatalf("Len = %d", re.Len())
	}
}

func TestDurableCheckpointRotatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.BulkLoad([]uint64{10, 20, 30, 40, 50}, nil); err != nil {
		t.Fatal(err)
	}
	for round := uint64(0); round < 3; round++ {
		for i := uint64(0); i < 10; i++ {
			if err := d.Insert(1000*round+i+100, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if got := d.WALSize(); got != 0 {
			t.Fatalf("WAL not rotated: %d bytes", got)
		}
	}
	// GC keeps exactly one snapshot and one (empty) live log.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, wals int
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			snaps++
		}
		if _, ok := parseSeq(e.Name(), walPrefix, walSuffix); ok {
			wals++
		}
	}
	if snaps != 1 || wals != 1 {
		t.Fatalf("GC left %d snapshots, %d wals", snaps, wals)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 5+30 {
		t.Fatalf("Len = %d after reopen", re.Len())
	}
}

// corruptFile flips one byte in the middle of path.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCorruptSnapshotFallsBack flips a byte in the newest snapshot
// while an older generation survives (as after a GC interrupted by a crash);
// recovery must fall back to the older snapshot plus its WAL chain and lose
// nothing that chain holds.
func TestDurableCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.BulkLoad([]uint64{1, 2, 3}, nil); err != nil { // → snapshot-1, wal-1
		t.Fatal(err)
	}
	for k := uint64(100); k < 120; k++ {
		if err := d.Insert(k, k); err != nil { // → wal-1 (fsynced per op)
			t.Fatal(err)
		}
	}
	// Preserve generation 1 before the next checkpoint GCs it.
	savedSnap, err := os.ReadFile(filepath.Join(dir, snapName(1)))
	if err != nil {
		t.Fatal(err)
	}
	savedWal, err := os.ReadFile(filepath.Join(dir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil { // → snapshot-2, wal-2; GC removes gen 1
		t.Fatal(err)
	}
	if err := d.Insert(600, 6); err != nil { // → wal-2
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Restore generation 1 (a crash mid-GC leaves exactly this) and corrupt
	// the newest snapshot.
	if err := os.WriteFile(filepath.Join(dir, snapName(1)), savedSnap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName(1)), savedWal, 0o644); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, snapName(2)))

	re, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// snapshot-1 + wal-1 + wal-2 reconstruct everything.
	for _, k := range []uint64{1, 2, 3, 110, 600} {
		if _, ok := re.Lookup(k); !ok {
			t.Fatalf("key %d lost on snapshot fallback", k)
		}
	}
	if re.Len() != 3+20+1 {
		t.Fatalf("Len = %d after fallback", re.Len())
	}
}

// TestDurableAllSnapshotsCorruptRefusesToOpen: when snapshot files exist but
// none passes integrity checks, OpenDir must fail loudly instead of silently
// serving a near-empty index.
func TestDurableAllSnapshotsCorruptRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.BulkLoad([]uint64{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, snapName(1)))
	if _, err := OpenDir(dir, durableOpts()); !errors.Is(err, ErrSnapshotsUnreadable) {
		t.Fatalf("OpenDir with only a corrupt snapshot: %v, want ErrSnapshotsUnreadable", err)
	}
}

// TestDurableStaleLogNoPhantom reproduces the GC hazard: a log older than the
// loaded snapshot survives (GC Remove is best-effort) while its successor —
// which deleted a key — is gone. Replay must skip the stale log, or the
// deleted key is resurrected.
func TestDurableStaleLogNoPhantom(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.BulkLoad([]uint64{10, 20}, nil); err != nil { // → snapshot-1, wal-1
		t.Fatal(err)
	}
	if err := d.Insert(111, 1); err != nil { // → wal-1
		t.Fatal(err)
	}
	savedWal, err := os.ReadFile(filepath.Join(dir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil { // snapshot-2 holds 111; GC removes wal-1
		t.Fatal(err)
	}
	if err := d.Delete(111); err != nil { // → wal-2
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil { // snapshot-3 without 111; GC removes wal-2
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Resurrect wal-1 — the insert of 111 with no trace of its deletion.
	if err := os.WriteFile(filepath.Join(dir, walName(1)), savedWal, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Lookup(111); ok {
		t.Fatal("stale pre-snapshot log replayed: deleted key 111 resurrected")
	}
	if re.Len() != 2 {
		t.Fatalf("Len = %d, want 2", re.Len())
	}
}

// renameFailFS makes every Rename fail, so a checkpoint dies at its commit
// step.
type renameFailFS struct{ faultfs.FS }

func (renameFailFS) Rename(oldpath, newpath string) error {
	return errors.New("injected rename failure")
}

// TestDurableBulkLoadCheckpointFailurePoisons: bulk data bypasses the WAL, so
// if the immediate checkpoint fails the handle must fail-stop instead of
// acking writes that recovery could never reconstruct.
func TestDurableBulkLoadCheckpointFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	d, err := openDirFS(dir, durableOpts(), renameFailFS{faultfs.OS})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.BulkLoad([]uint64{1, 2, 3}, nil); err == nil {
		t.Fatal("BulkLoad with failing checkpoint succeeded")
	}
	// Poisoned: every subsequent mutation reports the sticky failure.
	if err := d.Insert(9, 9); err == nil || errors.Is(err, ErrIndexClosed) {
		t.Fatalf("insert on poisoned index: %v, want sticky failure", err)
	}
	if err := d.Checkpoint(); err == nil {
		t.Fatal("checkpoint on poisoned index succeeded")
	}
	d.Close() //nolint:errcheck

	// Nothing was acked, so recovering an empty index is the honest outcome.
	re, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 0 {
		t.Fatalf("Len = %d after failed bulk load, want 0", re.Len())
	}
}

// TestDurableCrashMatrix is the acceptance test of the durability stack: a
// fixed workload (bulk load, inserts, deletes, a checkpoint mid-stream) runs
// on a crash-injecting filesystem that kills the process at step k, for every
// interesting k, with all three tear modes. After each crash the directory is
// reopened with the real filesystem and checked against the oracle:
//
//   - every acknowledged write is present (no acked-data loss),
//   - no key that was never attempted appears (no phantoms),
//   - acknowledged deletes stay deleted.
//
// Unacknowledged writes may or may not appear — both are legal crash
// outcomes.
func TestDurableCrashMatrix(t *testing.T) {
	// One clean dry run sizes the matrix.
	total := runCrashWorkload(t, t.TempDir(), 1<<40, 0, nil)
	if total < 20 {
		t.Fatalf("workload consumed only %d steps — matrix degenerate", total)
	}
	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	for k := int64(0); k < total; k += stride {
		dir := t.TempDir()
		acked := make(map[uint64]ackState)
		runCrashWorkload(t, dir, k, int(k%3), acked)
		verifyRecovered(t, dir, k, acked)
	}
}

type ackState struct {
	val     uint64
	present bool // acknowledged as inserted (true) or deleted (false)
	// unstable marks a key whose later mutation attempt FAILED (the crash hit
	// mid-operation). Like a timed-out commit, a failed op may or may not
	// have reached the log before the kill — its frame can be complete on
	// disk even though the caller saw an error — so recovery may legally
	// surface either the pre-op or post-op state. Only the phantom check
	// applies to such keys.
	unstable bool
}

// runCrashWorkload executes the fixed mutation sequence against dir through a
// CrashFS with the given step budget, recording acknowledged writes into
// acked (nil to skip). It returns the number of steps consumed.
func runCrashWorkload(t *testing.T, dir string, budget int64, tear int, acked map[uint64]ackState) int64 {
	t.Helper()
	cfs := faultfs.NewCrashFS(faultfs.OS, budget)
	cfs.Tear = tear
	d, err := openDirFS(dir, durableOpts(), cfs)
	if err != nil {
		return cfs.Steps() // crashed during initial open: empty dir, nothing acked
	}
	ack := func(key, val uint64, present bool, err error) {
		if acked == nil {
			return
		}
		if err != nil {
			if st, ok := acked[key]; ok {
				st.unstable = true
				acked[key] = st
			}
			return
		}
		acked[key] = ackState{val: val, present: present}
	}
	base := []uint64{100, 200, 300, 400, 500, 600, 700, 800}
	if err := d.BulkLoad(base, nil); err == nil && acked != nil {
		for _, k := range base {
			acked[k] = ackState{val: k, present: true}
		}
	}
	for i := uint64(0); i < 6; i++ {
		k := 1000 + i
		ack(k, i, true, d.Insert(k, i))
	}
	ack(200, 0, false, d.Delete(200))
	d.Checkpoint() //nolint:errcheck // a failed checkpoint must not lose anything either
	for i := uint64(0); i < 6; i++ {
		k := 2000 + i
		ack(k, i+50, true, d.Insert(k, i+50))
	}
	ack(1002, 0, false, d.Delete(1002))
	ack(300, 0, false, d.Delete(300))
	d.Close() //nolint:errcheck
	return cfs.Steps()
}

// verifyRecovered reopens dir with the real filesystem and checks the
// durability invariant against the oracle.
func verifyRecovered(t *testing.T, dir string, k int64, acked map[uint64]ackState) {
	t.Helper()
	re, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatalf("crash@%d: recovery failed: %v", k, err)
	}
	defer re.Close()
	for key, st := range acked {
		if st.unstable {
			continue
		}
		v, ok := re.Lookup(key)
		if st.present && !ok {
			t.Fatalf("crash@%d: acked key %d lost", k, key)
		}
		if st.present && v != st.val {
			t.Fatalf("crash@%d: acked key %d has value %d, want %d", k, key, v, st.val)
		}
		if !st.present && ok {
			t.Fatalf("crash@%d: acked delete of %d undone", k, key)
		}
	}
	// No phantoms: every present key was at least attempted by the workload.
	attempted := func(key uint64) bool {
		for _, b := range []uint64{100, 200, 300, 400, 500, 600, 700, 800} {
			if key == b {
				return true
			}
		}
		return (key >= 1000 && key < 1006) || (key >= 2000 && key < 2006)
	}
	re.Range(0, ^uint64(0), func(key, _ uint64) bool {
		if !attempted(key) {
			t.Fatalf("crash@%d: phantom key %d", k, key)
		}
		return true
	})
}

// TestDurableSyncPolicies exercises the interval and none policies end to
// end: writes land, close flushes, reopen recovers.
func TestDurableSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncInterval, SyncNone} {
		dir := t.TempDir()
		opts := durableOpts()
		opts.Sync = pol
		opts.SyncEvery = time.Millisecond
		d, err := OpenDir(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k <= 100; k++ {
			if err := d.Insert(k*3, k); err != nil {
				t.Fatalf("policy %d: %v", pol, err)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatalf("policy %d: close: %v", pol, err)
		}
		re, err := OpenDir(dir, opts)
		if err != nil {
			t.Fatalf("policy %d: reopen: %v", pol, err)
		}
		if re.Len() != 100 {
			t.Fatalf("policy %d: Len = %d after clean close", pol, re.Len())
		}
		re.Close()
	}
}

// TestWALOptionsDefaults pins the single place WAL options are derived from
// DirOptions (OpenDir and checkpoint rotation used to build them separately):
// a zero or negative SyncEvery falls back to the 10ms default, a positive one
// passes through, and the policy and filesystem are forwarded verbatim.
func TestWALOptionsDefaults(t *testing.T) {
	for _, tc := range []struct {
		in, want time.Duration
	}{
		{-5 * time.Second, 10 * time.Millisecond},
		{0, 10 * time.Millisecond},
		{3 * time.Millisecond, 3 * time.Millisecond},
	} {
		got := walOptions(DirOptions{Sync: SyncInterval, SyncEvery: tc.in}, faultfs.OS)
		if got.Interval != tc.want {
			t.Errorf("walOptions(SyncEvery=%v).Interval = %v, want %v", tc.in, got.Interval, tc.want)
		}
		if got.Policy != wal.SyncPolicy(SyncInterval) {
			t.Errorf("walOptions(SyncEvery=%v).Policy = %v, want interval", tc.in, got.Policy)
		}
		if got.FS != faultfs.FS(faultfs.OS) {
			t.Errorf("walOptions(SyncEvery=%v) did not forward the filesystem", tc.in)
		}
	}
}
