package chameleon

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"chameleon/internal/faultfs"
	"chameleon/internal/wal"
)

// SyncPolicy picks when acknowledged writes reach stable storage.
type SyncPolicy int

const (
	// SyncEveryOp fsyncs the WAL before every Insert/Delete returns: an
	// acknowledged write survives any crash. The default, and the slowest.
	SyncEveryOp SyncPolicy = iota
	// SyncInterval group-commits: the WAL is fsynced every DirOptions.SyncEvery
	// (default 10ms). A crash can lose up to one interval of acknowledged
	// writes; everything older is safe.
	SyncInterval
	// SyncNone leaves flushing to the OS. A crash can lose everything since
	// the last Checkpoint.
	SyncNone
)

// DirOptions configures OpenDir.
type DirOptions struct {
	Options
	// Sync is the WAL durability policy (default SyncEveryOp).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval group-commit period (default 10ms).
	SyncEvery time.Duration
}

// DurableIndex is an Index whose mutations survive process crashes. Every
// Insert and Delete is appended to a checksummed write-ahead log before it is
// applied in memory; Checkpoint writes an atomic, CRC-sealed snapshot and
// rotates the log. OpenDir recovers by loading the newest intact snapshot and
// replaying the log — a torn log tail (the signature of a crash mid-append)
// is truncated, never trusted.
//
// Reads (Lookup, Range, Len, ...) are forwarded to the inner Index and are as
// concurrent as ever. Mutations are serialized internally so the log's replay
// order equals the in-memory apply order. The inner index is deliberately not
// embedded: promoted mutators (ReadFrom, BulkLoad, StartRetrainer) would
// bypass the WAL and silently desynchronize memory from the log.
type DurableIndex struct {
	ix *Index

	mu     sync.Mutex // serializes batch commits, checkpoints, and Close
	fs     faultfs.FS
	dir    string
	log    *wal.Log
	seq    uint64 // highest snapshot/WAL sequence seen or written
	opts   DirOptions
	closed bool
	fail   error // sticky: set when on-disk and in-memory state may diverge

	// Group-commit queue. Writers enqueue under qmu (held only for the
	// append); the first writer to find no leader becomes one and drains the
	// queue batch by batch, paying one WAL write + one fsync per batch and
	// fanning acks back over each op's done channel. qmu orders only the
	// queue; d.mu still orders every batch against checkpoints and Close.
	qmu    sync.Mutex
	queue  []*pendingOp
	leader bool
}

// pendingOp is one enqueued mutation awaiting group commit. The committing
// leader sets err (nil = acked durable per the sync policy) before closing
// done.
type pendingOp struct {
	rec  wal.Record
	err  error
	done chan struct{}
}

// ErrIndexClosed is returned by operations on a closed DurableIndex.
var ErrIndexClosed = errors.New("chameleon: durable index closed")

// ErrSnapshotsUnreadable is returned by OpenDir when snapshot files exist but
// none passes its integrity checks. Opening would otherwise silently serve a
// near-empty index after, e.g., snapshot bit rot — the caller must decide
// whether to restore from backup or wipe the directory and accept the loss.
var ErrSnapshotsUnreadable = errors.New("chameleon: snapshot files present but none readable")

const (
	snapPrefix = "snapshot-"
	snapSuffix = ".ckpt"
	snapTemp   = ".tmp"
	walPrefix  = "wal-"
	walSuffix  = ".log"
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix) }
func walName(seq uint64) string  { return fmt.Sprintf("%s%016d%s", walPrefix, seq, walSuffix) }

// parseSeq extracts the sequence number from snapshot-<seq>.ckpt /
// wal-<seq>.log style names.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// OpenDir opens (or initializes) a durable index rooted at dir. Recovery runs
// first: the newest snapshot that passes its integrity checks is loaded —
// corrupt or torn snapshots are skipped, falling back to older ones — and
// every write-ahead log at or after that snapshot is replayed in order. The
// returned index reflects every acknowledged write the configured sync policy
// promised to keep.
func OpenDir(dir string, opts DirOptions) (*DurableIndex, error) {
	return openDirFS(dir, opts, faultfs.OS)
}

// openDirFS is OpenDir over an injectable filesystem; the crash-matrix test
// recovers with the real one after crashing a faultfs.CrashFS workload.
func openDirFS(dir string, opts DirOptions, fsys faultfs.FS) (*DurableIndex, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snapSeqs, walSeqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
		}
		if seq, ok := parseSeq(e.Name(), walPrefix, walSuffix); ok {
			walSeqs = append(walSeqs, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] }) // newest first
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })    // oldest first

	// Load the newest snapshot that checks out, falling back past corrupt
	// ones — but never silently: if snapshots exist and none loads, refuse to
	// open. Proceeding from an empty base would ack fresh writes on top of a
	// near-total loss the caller never agreed to.
	ix := New(opts.Options)
	chosen := uint64(0)
	loaded := len(snapSeqs) == 0
	var snapErr error
	for _, seq := range snapSeqs {
		if err := loadSnapshot(fsys, filepath.Join(dir, snapName(seq)), ix); err != nil {
			if snapErr == nil {
				snapErr = fmt.Errorf("%s: %w", snapName(seq), err)
			}
			continue
		}
		chosen = seq
		loaded = true
		break
	}
	if !loaded {
		return nil, fmt.Errorf("%w: %d candidate(s), newest: %v",
			ErrSnapshotsUnreadable, len(snapSeqs), snapErr)
	}

	apply := func(r wal.Record) {
		// Replay tolerates redundancy: a record already reflected in the
		// snapshot (possible only on fallback paths) must not fail recovery.
		switch r.Op {
		case wal.OpInsert:
			ix.inner.Insert(r.Key, r.Val) //nolint:errcheck
		case wal.OpDelete:
			ix.inner.Delete(r.Key) //nolint:errcheck
		}
	}

	// Replay logs at or after the loaded snapshot, oldest first. Each wal-<n>
	// starts exactly at snapshot-<n>'s state, so the ascending chain from
	// `chosen` reconstructs the pre-crash state; replaying records the
	// snapshot already holds (fallback paths) is harmless because the
	// conditional insert/delete semantics make in-order re-application
	// idempotent. Logs *older* than the snapshot are skipped, not replayed:
	// their records are all contained in it, and if GC removed a successor
	// log but left an older one (Remove errors are best-effort), replaying
	// the survivor would resurrect keys the missing log deleted — phantoms.
	// The newest log becomes the live one (wal.Open truncates its torn
	// tail); older logs are read-only.
	liveSeq := chosen
	for _, seq := range walSeqs {
		if seq > liveSeq {
			liveSeq = seq
		}
	}
	for _, seq := range walSeqs {
		if seq < chosen || seq == liveSeq {
			continue
		}
		if err := replayReadOnly(fsys, filepath.Join(dir, walName(seq)), apply); err != nil {
			return nil, err
		}
	}
	walOpts := wal.Options{Policy: wal.SyncPolicy(opts.Sync), Interval: opts.SyncEvery, FS: fsys}
	log, _, err := wal.Open(filepath.Join(dir, walName(liveSeq)), walOpts, apply)
	if err != nil {
		return nil, err
	}
	// The live WAL may have just been created: fsync the directory so its
	// entry survives a crash. Without this, power loss could drop the file
	// itself and with it every write acked to it — even under SyncEveryOp.
	if err := fsys.SyncDir(dir); err != nil {
		log.Close() //nolint:errcheck
		return nil, err
	}

	seq := liveSeq
	if len(snapSeqs) > 0 && snapSeqs[0] > seq {
		seq = snapSeqs[0] // never reuse the name of a corrupt newer snapshot
	}
	if opts.RetrainEvery > 0 {
		ix.inner.StartRetrainer(opts.RetrainEvery)
	}
	return &DurableIndex{ix: ix, fs: fsys, dir: dir, log: log, seq: seq, opts: opts}, nil
}

// loadSnapshot reads one snapshot file into ix, failing on any integrity
// violation (the envelope CRC plus ReadFrom's structural checks).
func loadSnapshot(fsys faultfs.FS, path string, ix *Index) error {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(f)
	f.Close() //nolint:errcheck
	if err != nil {
		return err
	}
	_, err = ix.inner.ReadFrom(bytes.NewReader(data))
	return err
}

// replayReadOnly applies every intact record of a rotated-out log without
// opening it for writing.
func replayReadOnly(fsys faultfs.FS, path string, apply func(wal.Record)) error {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	data, err := io.ReadAll(f)
	f.Close() //nolint:errcheck
	if err != nil {
		return err
	}
	wal.Replay(data, apply)
	return nil
}

// usableLocked gates mutations: a poisoned handle reports its sticky failure,
// a closed one ErrIndexClosed.
func (d *DurableIndex) usableLocked() error {
	if d.fail != nil {
		return d.fail
	}
	if d.closed {
		return ErrIndexClosed
	}
	return nil
}

// poisonLocked fail-stops the handle: once on-disk and in-memory state may
// disagree, acknowledging further writes would corrupt the recovery contract,
// so every subsequent mutation returns the sticky error. The WAL is closed so
// nothing more is appended; reads keep serving the in-memory state.
func (d *DurableIndex) poisonLocked(err error) {
	if d.fail != nil {
		return
	}
	d.fail = fmt.Errorf("chameleon: durable index failed: %w (in-memory and on-disk state may diverge; discard this handle and re-OpenDir)", err)
	d.ix.inner.StopRetrainer()
	if d.log != nil {
		d.log.Close() //nolint:errcheck
	}
}

// Insert logs key→val to the WAL (durably, under SyncEveryOp) and then
// applies it. A nil return means the write will survive per the sync policy.
// Concurrent Inserts/Deletes group-commit: their WAL frames share one write
// and one fsync, amortizing the durability cost across the batch without
// weakening it — no call returns nil before its own frame is durable.
func (d *DurableIndex) Insert(key, val uint64) error {
	return d.commit(wal.Record{Op: wal.OpInsert, Key: key, Val: val})
}

// Delete logs the removal and then applies it. Like Insert it participates in
// group commit.
func (d *DurableIndex) Delete(key uint64) error {
	return d.commit(wal.Record{Op: wal.OpDelete, Key: key})
}

// commit enqueues rec and blocks until a leader has committed (or rejected)
// it. The first writer to find no active leader becomes the leader and drains
// the queue until it is empty — including ops enqueued while earlier batches
// were committing — then steps down. Followers just wait; their latency is at
// most one in-flight batch plus their own.
func (d *DurableIndex) commit(rec wal.Record) error {
	op := &pendingOp{rec: rec, done: make(chan struct{})}
	d.qmu.Lock()
	d.queue = append(d.queue, op)
	if d.leader {
		d.qmu.Unlock()
		<-op.done
		return op.err
	}
	d.leader = true
	for {
		batch := d.queue
		d.queue = nil
		if len(batch) == 0 {
			d.leader = false
			d.qmu.Unlock()
			break
		}
		d.qmu.Unlock()
		d.commitBatch(batch)
		// Yield before collecting the next batch: the followers just acked
		// are runnable but may not have re-enqueued yet (on few cores they
		// only run when this goroutine pauses). One scheduler hop here lets
		// the next batch fill, trading nanoseconds of leader latency for
		// fsyncs amortized over whole batches instead of stragglers.
		runtime.Gosched()
		d.qmu.Lock()
	}
	<-op.done // committed by this goroutine in its first batch
	return op.err
}

// commitBatch validates, logs, applies, and acks one batch. It holds d.mu for
// the whole batch so a checkpoint can never rotate the WAL between a batch's
// append and its in-memory apply — the replay-order invariant (WAL order ==
// apply order, and every logged record *is* applied before the log it lives
// in can be superseded) is what recovery correctness rests on.
func (d *DurableIndex) commitBatch(batch []*pendingOp) {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer func() {
		for _, op := range batch {
			close(op.done)
		}
	}()

	if err := d.usableLocked(); err != nil {
		for _, op := range batch {
			op.err = err
		}
		return
	}

	// Validate in arrival order before logging anything, so the WAL records
	// exactly the mutations that will be applied — a logged-but-rejected
	// insert would materialize as a phantom key on replay. Validation of op k
	// must see the effects of ops 0..k−1 of the same batch (a duplicate
	// insert inside one batch fails exactly as it would have serially), so
	// earlier accepts are tracked in a batch-local presence overlay.
	overlay := make(map[uint64]bool, len(batch))
	accepted := batch[:0:0]
	recs := make([]wal.Record, 0, len(batch))
	for _, op := range batch {
		key := op.rec.Key
		present, known := overlay[key]
		if !known {
			_, present = d.ix.Lookup(key)
		}
		switch op.rec.Op {
		case wal.OpInsert:
			if present {
				op.err = ErrDuplicateKey
				continue
			}
		case wal.OpDelete:
			if !present {
				op.err = ErrKeyNotFound
				continue
			}
		}
		overlay[key] = op.rec.Op == wal.OpInsert
		accepted = append(accepted, op)
		recs = append(recs, op.rec)
	}
	if len(recs) == 0 {
		return
	}

	// One contiguous write, at most one fsync, for the whole batch. On
	// failure nothing is applied in memory and every accepted op reports the
	// error; the log's sticky error stops all future appends. Some frames may
	// still have reached disk — those ops were *not* acked, and an unacked op
	// surfacing after recovery is within contract (same as a failed single
	// append always was).
	if err := d.log.AppendAll(recs); err != nil {
		for _, op := range accepted {
			op.err = err
		}
		return
	}

	// Apply in log order. Validation above makes rejection impossible here,
	// so any failure means memory no longer matches what was just made
	// durable — fail-stop.
	for i, op := range accepted {
		var err error
		switch op.rec.Op {
		case wal.OpInsert:
			err = d.ix.Insert(op.rec.Key, op.rec.Val)
		case wal.OpDelete:
			err = d.ix.Delete(op.rec.Key)
		}
		if err != nil {
			d.poisonLocked(fmt.Errorf("group commit apply: %w", err))
			for _, rest := range accepted[i:] {
				rest.err = d.fail
			}
			return
		}
	}
}

// BulkLoad rebuilds the index from sorted keys and immediately checkpoints:
// bulk-loaded data is durable when BulkLoad returns, and the WAL restarts
// empty. Bulk data never passes through the WAL, so a failed checkpoint
// leaves it in memory with nothing on disk to recover it from — that failure
// poisons the handle (fail-stop) rather than letting acked state diverge.
func (d *DurableIndex) BulkLoad(keys, vals []uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	if err := d.ix.BulkLoad(keys, vals); err != nil {
		return err
	}
	if err := d.checkpointLocked(); err != nil {
		d.poisonLocked(fmt.Errorf("bulk-load checkpoint: %w", err))
		return d.fail
	}
	return nil
}

// Checkpoint writes the current contents as an atomic snapshot (temp file,
// fsync, rename, directory fsync), rotates to a fresh WAL, and garbage-
// collects superseded files. Recovery cost after Checkpoint is one snapshot
// load; the old log's records are all reflected in the snapshot.
func (d *DurableIndex) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	return d.checkpointLocked()
}

func (d *DurableIndex) checkpointLocked() error {
	newSeq := d.seq + 1
	final := filepath.Join(d.dir, snapName(newSeq))
	tmp := final + snapTemp

	f, err := d.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := d.ix.WriteTo(f); err != nil {
		f.Close()        //nolint:errcheck
		d.fs.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()        //nolint:errcheck
		d.fs.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Create the successor WAL *before* the rename commits, so the directory
	// fsync after the rename covers the new log's entry too. A WAL whose
	// dirent is not yet durable would silently lose every write acked to it
	// if a crash dropped the file — even under SyncEveryOp. Failing here is
	// safe: nothing has committed, the old snapshot + WAL stay authoritative.
	walPath := filepath.Join(d.dir, walName(newSeq))
	walOpts := wal.Options{Policy: wal.SyncPolicy(d.opts.Sync), Interval: d.opts.SyncEvery, FS: d.fs}
	newLog, _, err := wal.Open(walPath, walOpts, nil)
	if err != nil {
		d.fs.Remove(tmp) //nolint:errcheck
		return err
	}
	// The rename is the commit point: before it, recovery uses the previous
	// snapshot + WAL; after it, the new snapshot is authoritative and the old
	// WAL is redundant (its records are all inside the snapshot).
	if err := d.fs.Rename(tmp, final); err != nil {
		newLog.Close()       //nolint:errcheck
		d.fs.Remove(walPath) //nolint:errcheck
		d.fs.Remove(tmp)     //nolint:errcheck
		return err
	}
	// One directory fsync seals the commit: the snapshot's final name and the
	// successor WAL's entry become durable together. Past the rename there is
	// no undo — if this fsync fails, recovery might load the new snapshot yet
	// skip the old WAL that future writes would land in, so the handle is
	// poisoned instead of limping on.
	if err := d.fs.SyncDir(d.dir); err != nil {
		newLog.Close() //nolint:errcheck
		d.poisonLocked(fmt.Errorf("checkpoint commit fsync: %w", err))
		return d.fail
	}

	oldLog := d.log
	d.log = newLog
	d.seq = newSeq
	if oldLog != nil {
		oldLog.Close() //nolint:errcheck
	}

	// Best-effort GC: superseded snapshots, rotated-out logs, stray temp
	// files. A crash mid-GC leaves garbage that the next recovery skips and
	// the next checkpoint retries.
	if entries, err := d.fs.ReadDir(d.dir); err == nil {
		for _, e := range entries {
			if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok && seq < newSeq {
				d.fs.Remove(filepath.Join(d.dir, e.Name())) //nolint:errcheck
			}
			if seq, ok := parseSeq(e.Name(), walPrefix, walSuffix); ok && seq < newSeq {
				d.fs.Remove(filepath.Join(d.dir, e.Name())) //nolint:errcheck
			}
			if strings.HasSuffix(e.Name(), snapSuffix+snapTemp) && e.Name() != filepath.Base(tmp) {
				d.fs.Remove(filepath.Join(d.dir, e.Name())) //nolint:errcheck
			}
		}
	}
	return nil
}

// WALSize reports the live write-ahead log's length in bytes — the amount of
// replay work a crash right now would cost recovery.
func (d *DurableIndex) WALSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.log == nil {
		return 0
	}
	return d.log.Size()
}

// Dir reports the directory backing the index.
func (d *DurableIndex) Dir() string { return d.dir }

// Close stops the retrainer and closes the WAL (with a final sync unless the
// policy is SyncNone). It does not checkpoint: the log already holds
// everything, and the next OpenDir replays it.
func (d *DurableIndex) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	d.ix.inner.StopRetrainer()
	return d.log.Close()
}

// Read-side forwards. Only the non-mutating surface of Index is exposed;
// mutations must go through the WAL-logged methods above.

// Lookup returns the value stored for key.
func (d *DurableIndex) Lookup(key uint64) (uint64, bool) { return d.ix.Lookup(key) }

// Range calls fn for every key in [lo, hi] in ascending order until fn
// returns false.
func (d *DurableIndex) Range(lo, hi uint64, fn func(key, val uint64) bool) {
	d.ix.Range(lo, hi, fn)
}

// Len reports the number of stored keys.
func (d *DurableIndex) Len() int { return d.ix.Len() }

// Bytes estimates resident size in bytes.
func (d *DurableIndex) Bytes() int { return d.ix.Bytes() }

// Stats reports the structural metrics of the paper's Table V.
func (d *DurableIndex) Stats() Stats { return d.ix.Stats() }

// Height reports the deepest root-to-leaf path length.
func (d *DurableIndex) Height() int { return d.ix.Height() }

// LocalSkewness computes the lsn statistic over the current contents.
func (d *DurableIndex) LocalSkewness() float64 { return d.ix.LocalSkewness() }

// RetrainStats reports how many subtree retrains have run and the total time
// spent retraining.
func (d *DurableIndex) RetrainStats() (count int64, total time.Duration) {
	return d.ix.RetrainStats()
}

// Reconstructions reports how many full MARL rebuilds have run.
func (d *DurableIndex) Reconstructions() int { return d.ix.Reconstructions() }

// WriteTo serializes the current contents (read-only; it does not rotate the
// WAL — use Checkpoint for durable snapshots).
func (d *DurableIndex) WriteTo(w io.Writer) (int64, error) { return d.ix.WriteTo(w) }
