package chameleon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/faultfs"
	"chameleon/internal/segment"
	"chameleon/internal/wal"
)

// SyncPolicy picks when acknowledged writes reach stable storage.
type SyncPolicy int

const (
	// SyncEveryOp fsyncs the WAL before every Insert/Delete returns: an
	// acknowledged write survives any crash. The default, and the slowest.
	SyncEveryOp SyncPolicy = iota
	// SyncInterval group-commits: the WAL is fsynced every DirOptions.SyncEvery
	// (default 10ms). A crash can lose up to one interval of acknowledged
	// writes; everything older is safe.
	SyncInterval
	// SyncNone leaves flushing to the OS. A crash can lose everything since
	// the last Checkpoint.
	SyncNone
)

// DirOptions configures OpenDir.
type DirOptions struct {
	Options
	// Sync is the WAL durability policy (default SyncEveryOp).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval group-commit period (default 10ms).
	SyncEvery time.Duration
	// MaxPending bounds the number of mutations admitted into the
	// group-commit queue (including the batch currently committing). When the
	// bound is hit, further mutations are shed with ErrOverloaded — or block
	// for space when BlockOnFull is set. Zero means unbounded.
	MaxPending int
	// MaxPendingBytes bounds the queue by WAL footprint instead of op count
	// (each mutation costs wal.FrameSize bytes). Zero means unbounded; when
	// both bounds are set, either one rejects.
	MaxPendingBytes int64
	// BlockOnFull makes a full queue apply backpressure: mutations wait for
	// space (respecting their context deadline) instead of failing fast with
	// ErrOverloaded.
	BlockOnFull bool

	// Tiered switches the directory to tiered disk-resident storage
	// (tier.go): hot writes stay in the in-memory index backed by the WAL,
	// and a background flusher freezes the memtable into immutable learned-
	// index segments instead of Checkpoint rewriting monolithic snapshots. A
	// directory that already has a tier manifest always opens tiered,
	// regardless of this flag; a legacy directory opened with Tiered set
	// migrates on its first flush.
	Tiered bool
	// MemtableBytes is the approximate in-memory delta size that triggers a
	// background flush (default 4 MiB). Entries are accounted at 16 bytes.
	MemtableBytes int64
	// SegmentEps is the learned-model error bound ε for written segments
	// (default segment.DefaultEps): a cold lookup preads at most 2ε+1 keys.
	SegmentEps int
	// CompactL0 is how many L0 segments accumulate before a compaction
	// merges them (plus overlapping L1 runs) into L1 (default 4).
	CompactL0 int
}

// DurableIndex is an Index whose mutations survive process crashes. Every
// Insert and Delete is appended to a checksummed write-ahead log before it is
// applied in memory; Checkpoint writes an atomic, CRC-sealed snapshot and
// rotates the log. OpenDir recovers by loading the newest intact snapshot and
// replaying the log — a torn log tail (the signature of a crash mid-append)
// is truncated, never trusted.
//
// Reads (Lookup, Range, Len, ...) are forwarded to the inner Index and are as
// concurrent as ever. Mutations are serialized internally so the log's replay
// order equals the in-memory apply order. The inner index is deliberately not
// embedded: promoted mutators (ReadFrom, BulkLoad, StartRetrainer) would
// bypass the WAL and silently desynchronize memory from the log.
type DurableIndex struct {
	ix *Index

	mu     sync.Mutex // serializes batch commits, checkpoints, and Close
	fs     faultfs.FS
	dir    string
	log    *wal.Log
	seq    uint64 // highest snapshot/WAL sequence seen or written
	opts   DirOptions
	closed bool
	fail   error // sticky: set when on-disk and in-memory state may diverge

	// tier is the disk-resident segment tier (tier.go); nil in legacy
	// snapshot mode. Set once at open, before the handle escapes.
	tier *tier

	// Replication plumbing (replseq.go). commitSeq counts records ever
	// durably committed — the monotonic clock replication sequences on; it is
	// advanced under d.mu and persisted via the seq.meta sidecar (seqMeta,
	// also guarded by d.mu) plus WAL replay counting at recovery. commitHook,
	// when set, runs inside commitBatch after durability, before acks.
	// seqWaitCh broadcasts commit-sequence advancement to WaitSeq waiters
	// (close-and-replace under seqWaitMu, which nests inside any other lock).
	commitSeq  atomic.Uint64
	seqMeta    map[uint64]uint64
	seqMetaGen uint64 // newest sidecar generation on disk; next write is gen+1
	commitHook func(firstSeq uint64, recs []wal.Record) error
	seqWaitMu  sync.Mutex
	seqWaitCh  chan struct{}

	// Group-commit queue. Writers enqueue under qmu (held only for the
	// append); the first writer to find no leader becomes one and drains the
	// queue batch by batch, paying one WAL write + one fsync per batch and
	// fanning acks back over each op's done channel. qmu orders only the
	// queue; d.mu still orders every batch against checkpoints and Close.
	// Lock order is d.mu → qmu, never the reverse.
	qmu     sync.Mutex
	queue   []*pendingOp
	leader  bool
	qclosed bool // Close observed; admission refuses, space stays closed

	// Admission accounting: ops admitted but not yet committed (queued plus
	// the batch in flight). Enqueue increments; a batch's commit or an op's
	// cancellation decrements. space is closed-and-replaced to broadcast
	// "room freed" to writers blocked by BlockOnFull; after Close it stays
	// closed so waiters wake once and see qclosed.
	pendingOps   int
	pendingBytes int64
	highWater    int
	space        chan struct{}

	// Health counters (see Health); readsClosed flips the read surface to
	// zero values after Close without taking d.mu on every Lookup. failv
	// mirrors d.fail and walErrv the last sticky WAL append error so Health
	// and Err never need d.mu (which an in-flight batch holds across fsync).
	failv           atomic.Value // errBox
	walErrv         atomic.Value // errBox
	readsClosed     atomic.Bool
	degraded        atomic.Bool
	shedOps         atomic.Uint64
	cancelledOps    atomic.Uint64
	batches         atomic.Uint64
	batchedOps      atomic.Uint64
	diskFullBatches atomic.Uint64
	maxBatch        atomic.Int64
	fsyncHist       [len(FsyncBucketBounds) + 1]atomic.Uint64
	retrainPaused   atomic.Bool
	retrainPauses   atomic.Uint64
}

// pendingOp is one enqueued mutation awaiting group commit. The committing
// leader sets err (nil = acked durable per the sync policy) before closing
// done.
//
// state arbitrates the race between the leader claiming the op into a batch
// and the op's own goroutine cancelling on context expiry: exactly one CAS
// from opQueued wins. A claimed op is (or is about to be) in a committing
// batch, so its canceller must wait for the batch's real outcome — this is
// what makes cancellation two-state (ctx.Err() with no durable effect, or
// nil with the write durable; never anything in between).
type pendingOp struct {
	rec   wal.Record
	err   error
	done  chan struct{}
	state atomic.Int32
}

const (
	opQueued int32 = iota
	opClaimed
	opCancelled
)

// ErrIndexClosed is returned by operations on a closed DurableIndex.
var ErrIndexClosed = errors.New("chameleon: durable index closed")

// ErrOverloaded is returned by mutations shed at admission when the
// group-commit queue is at its configured bound (DirOptions.MaxPending /
// MaxPendingBytes) and BlockOnFull is off. A shed mutation was never logged
// and never applied — retrying later is always safe.
var ErrOverloaded = errors.New("chameleon: durable index overloaded: group-commit queue full")

// ErrDiskFull marks a mutation rejected because the WAL's disk is full. It is
// retryable: the index stays consistent and readable (Health reports
// degraded-read-only), and the same handle accepts writes again once space is
// freed or a Checkpoint rotates to a fresh log.
var ErrDiskFull = wal.ErrDiskFull

// ErrSnapshotsUnreadable is returned by OpenDir when snapshot files exist but
// none passes its integrity checks. Opening would otherwise silently serve a
// near-empty index after, e.g., snapshot bit rot — the caller must decide
// whether to restore from backup or wipe the directory and accept the loss.
var ErrSnapshotsUnreadable = errors.New("chameleon: snapshot files present but none readable")

const (
	snapPrefix = "snapshot-"
	snapSuffix = ".ckpt"
	snapTemp   = ".tmp"
	walPrefix  = "wal-"
	walSuffix  = ".log"
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix) }
func walName(seq uint64) string  { return fmt.Sprintf("%s%016d%s", walPrefix, seq, walSuffix) }

// walOptions is the single place DirOptions maps onto wal.Options — both the
// initial OpenDir and every checkpoint rotation go through it, so the sync
// policy and interval defaulting can never diverge between the log a
// directory opens with and the logs it rotates to. A zero or negative
// SyncEvery normalizes to the documented 10ms default here, in exactly one
// place.
func walOptions(opts DirOptions, fsys faultfs.FS) wal.Options {
	interval := opts.SyncEvery
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return wal.Options{Policy: wal.SyncPolicy(opts.Sync), Interval: interval, FS: fsys}
}

// parseSeq extracts the sequence number from snapshot-<seq>.ckpt /
// wal-<seq>.log style names.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// OpenDir opens (or initializes) a durable index rooted at dir. Recovery runs
// first: the newest snapshot that passes its integrity checks is loaded —
// corrupt or torn snapshots are skipped, falling back to older ones — and
// every write-ahead log at or after that snapshot is replayed in order. The
// returned index reflects every acknowledged write the configured sync policy
// promised to keep.
func OpenDir(dir string, opts DirOptions) (*DurableIndex, error) {
	return openDirFS(dir, opts, faultfs.OS)
}

// openDirFS is OpenDir over an injectable filesystem; the crash-matrix test
// recovers with the real one after crashing a faultfs.CrashFS workload.
func openDirFS(dir string, opts DirOptions, fsys faultfs.FS) (*DurableIndex, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A directory with a tier manifest is tiered, whatever the options say:
	// opening it through the legacy path would ignore the segments entirely.
	man, err := segment.LoadManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	if man != nil {
		return openTieredDir(dir, opts, fsys, man)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snapSeqs, walSeqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
		}
		if seq, ok := parseSeq(e.Name(), walPrefix, walSuffix); ok {
			walSeqs = append(walSeqs, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] }) // newest first
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })    // oldest first

	// Load the newest snapshot that checks out, falling back past corrupt
	// ones — but never silently: if snapshots exist and none loads, refuse to
	// open. Proceeding from an empty base would ack fresh writes on top of a
	// near-total loss the caller never agreed to.
	ix := New(opts.Options)
	chosen := uint64(0)
	loaded := len(snapSeqs) == 0
	var snapErr error
	for _, seq := range snapSeqs {
		if err := loadSnapshot(fsys, filepath.Join(dir, snapName(seq)), ix); err != nil {
			if snapErr == nil {
				snapErr = fmt.Errorf("%s: %w", snapName(seq), err)
			}
			continue
		}
		chosen = seq
		loaded = true
		break
	}
	if !loaded {
		return nil, fmt.Errorf("%w: %d candidate(s), newest: %v",
			ErrSnapshotsUnreadable, len(snapSeqs), snapErr)
	}

	// Every replayed WAL record is one commit after the chosen snapshot, so
	// counting them (plus the snapshot's recorded base from seq.meta)
	// reconstructs the commit-sequence clock across restarts.
	var replayed uint64
	apply := func(r wal.Record) {
		replayed++
		// Replay tolerates redundancy: a record already reflected in the
		// snapshot (possible only on fallback paths) must not fail recovery.
		switch r.Op {
		case wal.OpInsert:
			ix.inner.Insert(r.Key, r.Val) //nolint:errcheck
		case wal.OpDelete:
			ix.inner.Delete(r.Key) //nolint:errcheck
		}
	}

	// Replay logs at or after the loaded snapshot, oldest first. Each wal-<n>
	// starts exactly at snapshot-<n>'s state, so the ascending chain from
	// `chosen` reconstructs the pre-crash state; replaying records the
	// snapshot already holds (fallback paths) is harmless because the
	// conditional insert/delete semantics make in-order re-application
	// idempotent. Logs *older* than the snapshot are skipped, not replayed:
	// their records are all contained in it, and if GC removed a successor
	// log but left an older one (Remove errors are best-effort), replaying
	// the survivor would resurrect keys the missing log deleted — phantoms.
	// The newest log becomes the live one (wal.Open truncates its torn
	// tail); older logs are read-only.
	liveSeq := chosen
	for _, seq := range walSeqs {
		if seq > liveSeq {
			liveSeq = seq
		}
	}
	for _, seq := range walSeqs {
		if seq < chosen || seq == liveSeq {
			continue
		}
		if err := replayReadOnly(fsys, filepath.Join(dir, walName(seq)), apply); err != nil {
			return nil, err
		}
	}
	log, _, err := wal.Open(filepath.Join(dir, walName(liveSeq)), walOptions(opts, fsys), apply)
	if err != nil {
		return nil, err
	}
	// The live WAL may have just been created: fsync the directory so its
	// entry survives a crash. Without this, power loss could drop the file
	// itself and with it every write acked to it — even under SyncEveryOp.
	if err := fsys.SyncDir(dir); err != nil {
		log.Close() //nolint:errcheck
		return nil, err
	}

	seq := liveSeq
	if len(snapSeqs) > 0 && snapSeqs[0] > seq {
		seq = snapSeqs[0] // never reuse the name of a corrupt newer snapshot
	}
	if opts.RetrainEvery > 0 {
		ix.inner.StartRetrainer(opts.RetrainEvery)
	}
	seqMeta, seqMetaGen := readSeqMeta(fsys, dir)
	d := &DurableIndex{
		ix: ix, fs: fsys, dir: dir, log: log, seq: seq, opts: opts,
		space:      make(chan struct{}),
		seqMeta:    seqMeta,
		seqMetaGen: seqMetaGen,
	}
	// Commit clock: the chosen snapshot's recorded commit sequence (zero for
	// pre-replication directories — the documented legacy fallback) plus one
	// for every record replayed after it.
	d.commitSeq.Store(d.seqMeta[chosen] + replayed)
	if opts.Tiered {
		// Legacy directory explicitly opened tiered: migration. The recovered
		// state is the memtable; the first flush moves it into an L0 segment.
		attachEmptyTier(d)
	}
	return d, nil
}

// loadSnapshot reads one snapshot file into ix, failing on any integrity
// violation (the envelope CRC plus ReadFrom's structural checks).
func loadSnapshot(fsys faultfs.FS, path string, ix *Index) error {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(f)
	f.Close() //nolint:errcheck
	if err != nil {
		return err
	}
	_, err = ix.inner.ReadFrom(bytes.NewReader(data))
	return err
}

// replayReadOnly applies every intact record of a rotated-out log without
// opening it for writing.
func replayReadOnly(fsys faultfs.FS, path string, apply func(wal.Record)) error {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	data, err := io.ReadAll(f)
	f.Close() //nolint:errcheck
	if err != nil {
		return err
	}
	wal.Replay(data, apply)
	return nil
}

// usableLocked gates mutations: a poisoned handle reports its sticky failure,
// a closed one ErrIndexClosed.
func (d *DurableIndex) usableLocked() error {
	if d.fail != nil {
		return d.fail
	}
	if d.closed {
		return ErrIndexClosed
	}
	return nil
}

// poisonLocked fail-stops the handle: once on-disk and in-memory state may
// disagree, acknowledging further writes would corrupt the recovery contract,
// so every subsequent mutation returns the sticky error. The WAL is closed so
// nothing more is appended; reads keep serving the in-memory state.
func (d *DurableIndex) poisonLocked(err error) {
	if d.fail != nil {
		return
	}
	d.fail = fmt.Errorf("chameleon: durable index failed: %w (in-memory and on-disk state may diverge; discard this handle and re-OpenDir)", err)
	d.failv.Store(errBox{d.fail})
	d.ix.inner.StopRetrainer()
	if d.log != nil {
		d.log.Close() //nolint:errcheck
	}
	d.broadcastSeq() // WaitSeq waiters must wake and observe the poison
}

// Insert logs key→val to the WAL (durably, under SyncEveryOp) and then
// applies it. A nil return means the write will survive per the sync policy.
// Concurrent Inserts/Deletes group-commit: their WAL frames share one write
// and one fsync, amortizing the durability cost across the batch without
// weakening it — no call returns nil before its own frame is durable.
//
// When the group-commit queue is at its configured bound the call returns
// ErrOverloaded (or waits, under DirOptions.BlockOnFull); when the WAL's disk
// is full it returns ErrDiskFull. Both are clean rejections: nothing was
// logged or applied, and retrying is safe.
func (d *DurableIndex) Insert(key, val uint64) error {
	return d.commit(context.Background(), wal.Record{Op: wal.OpInsert, Key: key, Val: val})
}

// InsertCtx is Insert honoring a context deadline or cancellation. The result
// is exactly two-state: a ctx.Err() return means the mutation had no durable
// effect and was never applied; a nil return means it is durable per the sync
// policy. If cancellation arrives after the op has been claimed into a
// committing batch, InsertCtx waits for the batch's outcome and reports it —
// a write that may already be on disk is never reported as cancelled.
func (d *DurableIndex) InsertCtx(ctx context.Context, key, val uint64) error {
	return d.commit(ctx, wal.Record{Op: wal.OpInsert, Key: key, Val: val})
}

// Delete logs the removal and then applies it. Like Insert it participates in
// group commit and in admission control.
func (d *DurableIndex) Delete(key uint64) error {
	return d.commit(context.Background(), wal.Record{Op: wal.OpDelete, Key: key})
}

// DeleteCtx is Delete honoring a context deadline or cancellation, with the
// same two-state contract as InsertCtx.
func (d *DurableIndex) DeleteCtx(ctx context.Context, key uint64) error {
	return d.commit(ctx, wal.Record{Op: wal.OpDelete, Key: key})
}

// commit admits, enqueues, and blocks until a leader has committed (or
// rejected) rec. The first writer to find no active leader becomes the leader
// and drains the queue until it is empty — including ops enqueued while
// earlier batches were committing — then steps down. Followers wait; their
// latency is at most one in-flight batch plus their own.
func (d *DurableIndex) commit(ctx context.Context, rec wal.Record) error {
	if err := ctx.Err(); err != nil {
		return err // dead context: reject before touching the queue
	}
	op := &pendingOp{rec: rec, done: make(chan struct{})}
	d.qmu.Lock()
	for {
		if d.qclosed {
			d.qmu.Unlock()
			return ErrIndexClosed
		}
		if d.admitLocked() {
			break
		}
		if !d.opts.BlockOnFull {
			d.shedOps.Add(1)
			d.qmu.Unlock()
			return ErrOverloaded
		}
		wait := d.space
		d.qmu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			d.cancelledOps.Add(1)
			return ctx.Err() // never admitted: trivially no durable effect
		}
		d.qmu.Lock()
	}
	d.queue = append(d.queue, op)
	d.pendingOps++
	d.pendingBytes += wal.FrameSize
	if d.pendingOps > d.highWater {
		d.highWater = d.pendingOps
	}
	d.updateRetrainPauseLocked()
	if d.leader {
		d.qmu.Unlock()
		return d.waitFollower(ctx, op)
	}
	d.leader = true
	for {
		batch := d.claimLocked()
		if len(batch) == 0 {
			d.leader = false
			d.updateRetrainPauseLocked()
			d.qmu.Unlock()
			break
		}
		d.qmu.Unlock()
		d.commitBatch(batch)
		// Yield before collecting the next batch: the followers just acked
		// are runnable but may not have re-enqueued yet (on few cores they
		// only run when this goroutine pauses). One scheduler hop here lets
		// the next batch fill, trading nanoseconds of leader latency for
		// fsyncs amortized over whole batches instead of stragglers.
		runtime.Gosched()
		d.qmu.Lock()
	}
	// The leader's own op is always claimed into its first batch (nothing
	// can cancel it — cancellation is done by the op's own goroutine, which
	// is busy leading), so it is resolved by now. The leader deliberately
	// ignores ctx while draining: abandoning the queue would strand every
	// follower behind it.
	<-op.done
	return op.err
}

// admitLocked checks the queue bounds. Callers hold qmu.
func (d *DurableIndex) admitLocked() bool {
	if d.opts.MaxPending > 0 && d.pendingOps >= d.opts.MaxPending {
		return false
	}
	if d.opts.MaxPendingBytes > 0 && d.pendingBytes+wal.FrameSize > d.opts.MaxPendingBytes {
		return false
	}
	return true
}

// claimLocked moves every still-queued op into a batch, skipping (and
// dropping) ops whose canceller won the CAS race. Callers hold qmu.
func (d *DurableIndex) claimLocked() []*pendingOp {
	batch := d.queue[:0]
	for _, op := range d.queue {
		if op.state.CompareAndSwap(opQueued, opClaimed) {
			batch = append(batch, op)
		}
	}
	d.queue = nil
	return batch
}

// waitFollower blocks a non-leader writer until its op resolves or its
// context dies. On cancellation the op is withdrawn only if the leader has
// not claimed it; once claimed, the op's frame may already be durable, so the
// follower must wait out the batch and report its true outcome.
func (d *DurableIndex) waitFollower(ctx context.Context, op *pendingOp) error {
	select {
	case <-op.done:
		return op.err
	case <-ctx.Done():
	}
	if op.state.CompareAndSwap(opQueued, opCancelled) {
		// Withdrawn before any leader touched it: release its accounting.
		// The op itself stays in d.queue until the next claim pass drops it.
		d.qmu.Lock()
		d.pendingOps--
		d.pendingBytes -= wal.FrameSize
		d.signalSpaceLocked()
		d.updateRetrainPauseLocked()
		d.qmu.Unlock()
		d.cancelledOps.Add(1)
		return ctx.Err()
	}
	<-op.done // claimed: in (or past) a committing batch — outcome is real
	return op.err
}

// signalSpaceLocked broadcasts "queue space freed" to writers blocked in
// admission by closing and replacing the space channel. After Close the
// channel stays closed so late waiters wake immediately and observe qclosed.
// Callers hold qmu.
func (d *DurableIndex) signalSpaceLocked() {
	if d.qclosed {
		return
	}
	close(d.space)
	d.space = make(chan struct{})
}

// pauseThreshold is the queue depth at which background retraining stops
// competing with foreground writes; maintenance resumes at half of it.
func (d *DurableIndex) pauseThreshold() int {
	if d.opts.MaxPending > 0 {
		if t := d.opts.MaxPending / 2; t >= 2 {
			return t
		}
		return 2
	}
	return 256 // unbounded queue: pause once a sustained backlog forms
}

// updateRetrainPauseLocked pauses the retrainer when the queue is saturated
// and resumes it once the backlog drains (with hysteresis, so a queue
// hovering at the threshold doesn't flap). Callers hold qmu.
func (d *DurableIndex) updateRetrainPauseLocked() {
	hi := d.pauseThreshold()
	switch {
	case !d.retrainPaused.Load() && d.pendingOps >= hi:
		d.retrainPaused.Store(true)
		d.retrainPauses.Add(1)
		d.ix.PauseRetrainer()
	case d.retrainPaused.Load() && d.pendingOps <= hi/2:
		d.retrainPaused.Store(false)
		d.ix.ResumeRetrainer()
	}
}

// commitBatch validates, logs, applies, and acks one batch. It holds d.mu for
// the whole batch so a checkpoint can never rotate the WAL between a batch's
// append and its in-memory apply — the replay-order invariant (WAL order ==
// apply order, and every logged record *is* applied before the log it lives
// in can be superseded) is what recovery correctness rests on.
func (d *DurableIndex) commitBatch(batch []*pendingOp) {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer func() {
		for _, op := range batch {
			close(op.done)
		}
	}()
	// Release the batch's admission accounting while still holding d.mu
	// (defers run LIFO: this runs before the acks above and long before d.mu
	// unlocks). WALSize also orders d.mu → qmu, so it observes either
	// "queued, not yet in the log" or "in the log, accounting released" —
	// never both, never neither.
	defer func() {
		d.qmu.Lock()
		d.pendingOps -= len(batch)
		d.pendingBytes -= int64(len(batch)) * wal.FrameSize
		d.signalSpaceLocked()
		d.updateRetrainPauseLocked()
		d.qmu.Unlock()
	}()

	if err := d.usableLocked(); err != nil {
		for _, op := range batch {
			op.err = err
		}
		return
	}

	// Validate in arrival order before logging anything, so the WAL records
	// exactly the mutations that will be applied — a logged-but-rejected
	// insert would materialize as a phantom key on replay. Validation of op k
	// must see the effects of ops 0..k−1 of the same batch (a duplicate
	// insert inside one batch fails exactly as it would have serially), so
	// earlier accepts are tracked in a batch-local presence overlay.
	overlay := make(map[uint64]bool, len(batch))
	accepted := batch[:0:0]
	recs := make([]wal.Record, 0, len(batch))
	for _, op := range batch {
		key := op.rec.Key
		present, known := overlay[key]
		if !known {
			var verr error
			present, verr = d.presentLocked(key)
			if verr != nil {
				// A segment I/O failure during validation fails this op
				// without logging it; the handle itself stays usable.
				op.err = fmt.Errorf("validate: %w", verr)
				continue
			}
		}
		switch op.rec.Op {
		case wal.OpInsert:
			if present {
				op.err = ErrDuplicateKey
				continue
			}
		case wal.OpDelete:
			if !present {
				op.err = ErrKeyNotFound
				continue
			}
		}
		overlay[key] = op.rec.Op == wal.OpInsert
		accepted = append(accepted, op)
		recs = append(recs, op.rec)
	}
	if len(recs) == 0 {
		return
	}

	// One contiguous write, at most one fsync, for the whole batch. On
	// failure nothing is applied in memory and every accepted op reports the
	// error. Disk full is the retryable case: the WAL rolled itself back to
	// the last frame boundary, nothing diverged, and the handle goes
	// degraded-read-only until space is freed or a checkpoint rotates the
	// log. Any other failure is sticky in the log and stops future appends;
	// some frames may still have reached disk — those ops were *not* acked,
	// and an unacked op surfacing after recovery is within contract (same as
	// a failed single append always was).
	start := time.Now()
	err := d.log.AppendAll(recs)
	d.observeFsync(time.Since(start))
	if err != nil {
		if errors.Is(err, wal.ErrDiskFull) {
			d.diskFullBatches.Add(1)
		} else {
			d.walErrv.Store(errBox{err}) // sticky until a checkpoint rotates
		}
		d.degraded.Store(true)
		for _, op := range accepted {
			op.err = err
		}
		return
	}
	d.degraded.Store(false)
	d.walErrv.Store(errBox{})
	d.batches.Add(1)
	d.batchedOps.Add(uint64(len(recs)))
	if n := int64(len(batch)); n > d.maxBatch.Load() {
		d.maxBatch.Store(n) // only the leader writes this, under d.mu
	}

	// Apply in log order. Validation above makes rejection impossible here,
	// so any failure means memory no longer matches what was just made
	// durable — fail-stop.
	for i, op := range accepted {
		if err := d.applyRecordLocked(op.rec); err != nil {
			d.poisonLocked(fmt.Errorf("group commit apply: %w", err))
			for _, rest := range accepted[i:] {
				rest.err = d.fail
			}
			return
		}
	}
	if d.tier != nil {
		d.tier.maybeSignalFlush()
	}

	// The batch's records now carry commit sequences [first, first+len-1].
	// The hook (replication) runs after durability and apply but before the
	// deferred acks: a non-nil hook error is reported to every writer in the
	// batch instead of nil — the write is durable locally, so this is the
	// documented ambiguous-fate outcome (see SetCommitHook).
	first := d.commitSeq.Load() + 1
	d.advanceCommitSeq(uint64(len(recs)))
	if d.commitHook != nil {
		if err := d.commitHook(first, recs); err != nil {
			for _, op := range accepted {
				op.err = err
			}
		}
	}
}

// BulkLoad rebuilds the index from sorted keys and immediately makes the
// data durable — in legacy mode as an atomic snapshot, in tiered mode as one
// fresh L1 segment replacing all tier state (tier.bulkLoad). Bulk data never
// passes through the WAL, so a failure after the commit point poisons the
// handle (fail-stop) rather than letting acked state diverge.
func (d *DurableIndex) BulkLoad(keys, vals []uint64) error {
	if d.tier != nil {
		return d.tier.bulkLoad(keys, vals)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	if err := d.ix.BulkLoad(keys, vals); err != nil {
		return err
	}
	if err := d.checkpointLocked(); err != nil {
		d.poisonLocked(fmt.Errorf("bulk-load checkpoint: %w", err))
		return d.fail
	}
	return nil
}

// Checkpoint writes the current contents as an atomic snapshot (temp file,
// fsync, rename, directory fsync), rotates to a fresh WAL, and garbage-
// collects superseded files. Recovery cost after Checkpoint is one snapshot
// load; the old log's records are all reflected in the snapshot.
//
// In tiered mode Checkpoint is a Flush: the durability contract (everything
// committed so far is recoverable without the truncated WAL) is the same,
// but the cost scales with the delta since the last flush, not the full
// index.
func (d *DurableIndex) Checkpoint() error {
	if d.tier != nil {
		return d.Flush()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	return d.checkpointLocked()
}

// CheckpointCtx is Checkpoint honoring a context deadline while waiting for
// in-flight batches and for the snapshot write itself. A checkpoint cannot be
// abandoned mid-commit (the rename either happened or it didn't), so on
// cancellation the checkpoint keeps running to completion in the background
// and ctx.Err() means only "stopped waiting" — the handle stays consistent
// either way, and a subsequent WALSize or Health call shows whether the
// rotation landed.
func (d *DurableIndex) CheckpointCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.Checkpoint() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (d *DurableIndex) checkpointLocked() error {
	newSeq := d.seq + 1
	final := filepath.Join(d.dir, snapName(newSeq))
	tmp := final + snapTemp

	f, err := d.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := d.ix.WriteTo(f); err != nil {
		f.Close()        //nolint:errcheck
		d.fs.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()        //nolint:errcheck
		d.fs.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Create the successor WAL *before* the rename commits, so the directory
	// fsync after the rename covers the new log's entry too. A WAL whose
	// dirent is not yet durable would silently lose every write acked to it
	// if a crash dropped the file — even under SyncEveryOp. Failing here is
	// safe: nothing has committed, the old snapshot + WAL stay authoritative.
	walPath := filepath.Join(d.dir, walName(newSeq))
	newLog, _, err := wal.Open(walPath, walOptions(d.opts, d.fs), nil)
	if err != nil {
		d.fs.Remove(tmp) //nolint:errcheck
		return err
	}
	// Record the new snapshot's commit sequence in the sidecar before the
	// rename commits, so the directory fsync below seals snapshot, successor
	// WAL, and sidecar together. Failing here is still safe to abort: the old
	// snapshot stays authoritative and keeps its own sidecar entry.
	if d.seqMeta == nil {
		d.seqMeta = make(map[uint64]uint64)
	}
	d.seqMeta[newSeq] = d.commitSeq.Load()
	if err := d.writeSeqMetaLocked(); err != nil {
		delete(d.seqMeta, newSeq)
		newLog.Close()       //nolint:errcheck
		d.fs.Remove(walPath) //nolint:errcheck
		d.fs.Remove(tmp)     //nolint:errcheck
		return err
	}
	// The rename is the commit point: before it, recovery uses the previous
	// snapshot + WAL; after it, the new snapshot is authoritative and the old
	// WAL is redundant (its records are all inside the snapshot).
	if err := d.fs.Rename(tmp, final); err != nil {
		newLog.Close()       //nolint:errcheck
		d.fs.Remove(walPath) //nolint:errcheck
		d.fs.Remove(tmp)     //nolint:errcheck
		return err
	}
	// One directory fsync seals the commit: the snapshot's final name and the
	// successor WAL's entry become durable together. Past the rename there is
	// no undo — if this fsync fails, recovery might load the new snapshot yet
	// skip the old WAL that future writes would land in, so the handle is
	// poisoned instead of limping on.
	if err := d.fs.SyncDir(d.dir); err != nil {
		newLog.Close() //nolint:errcheck
		d.poisonLocked(fmt.Errorf("checkpoint commit fsync: %w", err))
		return d.fail
	}

	oldLog := d.log
	d.log = newLog
	d.seq = newSeq
	if oldLog != nil {
		oldLog.Close() //nolint:errcheck
	}
	// The fresh, empty log is the checkpoint-truncation recovery path out of
	// degraded-read-only: whatever filled or wedged the old WAL is now
	// garbage, about to be collected below.
	d.degraded.Store(false)
	d.walErrv.Store(errBox{})

	// Best-effort GC: superseded snapshots, rotated-out logs, stray temp
	// files. A crash mid-GC leaves garbage that the next recovery skips and
	// the next checkpoint retries.
	if entries, err := d.fs.ReadDir(d.dir); err == nil {
		for _, e := range entries {
			if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok && seq < newSeq {
				d.fs.Remove(filepath.Join(d.dir, e.Name())) //nolint:errcheck
				delete(d.seqMeta, seq)                      // stale entry; rewritten next checkpoint
			}
			if seq, ok := parseSeq(e.Name(), walPrefix, walSuffix); ok && seq < newSeq {
				d.fs.Remove(filepath.Join(d.dir, e.Name())) //nolint:errcheck
			}
			if strings.HasSuffix(e.Name(), snapSuffix+snapTemp) && e.Name() != filepath.Base(tmp) {
				d.fs.Remove(filepath.Join(d.dir, e.Name())) //nolint:errcheck
			}
		}
	}
	return nil
}

// WALSize reports the live write-ahead log's length in bytes — the amount of
// replay work a crash right now would cost recovery — plus one frame for each
// mutation admitted but not yet committed, so the figure is consistent under
// concurrent writers: an op counts from the moment Insert accepts it, first
// as queue accounting and then as log bytes, never as both and never as
// neither. (Queued ops that a batch later rejects, e.g. duplicate inserts,
// make the pre-commit figure a slight upper bound.)
func (d *DurableIndex) WALSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.log == nil {
		return 0
	}
	size := d.log.Size()
	d.qmu.Lock()
	size += d.pendingBytes
	d.qmu.Unlock()
	return size
}

// Dir reports the directory backing the index.
func (d *DurableIndex) Dir() string { return d.dir }

// Close stops the retrainer and closes the WAL (with a final sync unless the
// policy is SyncNone). It does not checkpoint: the log already holds
// everything, and the next OpenDir replays it.
//
// Writers caught in flight resolve deterministically, never hang, and are
// never acked after Close returns without their write being durable: ops
// blocked in admission wake immediately with ErrIndexClosed; ops enqueued but
// not yet claimed are failed with ErrIndexClosed by the leader's next batch;
// a batch already committing finishes first — Close waits behind it on d.mu —
// and its acks (nil, durable) land before Close returns.
func (d *DurableIndex) Close() error {
	// Refuse new admissions and wake blocked ones before taking d.mu: a
	// waiter must not sleep on the space channel while Close itself is parked
	// behind an in-flight (possibly stalled) batch.
	d.qmu.Lock()
	if !d.qclosed {
		d.qclosed = true
		close(d.space) // stays closed: every future waiter wakes instantly
	}
	d.qmu.Unlock()

	// Stop the tier's background flusher before taking d.mu: a flush in
	// progress needs d.mu to finish, so waiting for it under d.mu would
	// deadlock.
	if d.tier != nil {
		d.tier.stop()
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	d.readsClosed.Store(true)
	d.broadcastSeq() // WaitSeq waiters wake and observe ErrIndexClosed
	d.ix.inner.StopRetrainer()
	err := d.log.Close()
	if d.tier != nil {
		// readsClosed is set: no new cold read can start. The barrier inside
		// closeReaders drains the in-flight ones, then the files close.
		d.tier.closeReaders()
	}
	return err
}

// Read-side forwards. Only the non-mutating surface of Index is exposed;
// mutations must go through the WAL-logged methods above.
//
// Reads keep serving the in-memory state on a poisoned or degraded handle —
// the index is read-only, not gone; that is the point of the degraded state.
// After Close, reads return clean zero values ("not found", length 0) rather
// than panicking or serving a handle the caller relinquished; Err and Health
// distinguish closed from merely empty.

// Lookup returns the value stored for key. In tiered mode a memtable miss
// falls through to the frozen run and then the segments, newest first — one
// model evaluation and one bounded pread per consulted run.
func (d *DurableIndex) Lookup(key uint64) (uint64, bool) {
	if d.readsClosed.Load() {
		return 0, false
	}
	if d.tier != nil {
		return d.tier.lookup(key)
	}
	return d.ix.Lookup(key)
}

// LookupBatch resolves keys[i] into vals[i], found[i] against one tree
// snapshot; in tiered mode misses are then resolved against the cold tiers.
// After Close every key reports clean not-found, matching Lookup. vals and
// found must be at least len(keys) long.
func (d *DurableIndex) LookupBatch(keys, vals []uint64, found []bool) {
	if d.readsClosed.Load() {
		for i := range keys {
			vals[i], found[i] = 0, false
		}
		return
	}
	d.ix.LookupBatch(keys, vals, found)
	if d.tier == nil {
		return
	}
	for i := range keys {
		if !found[i] {
			vals[i], found[i] = d.tier.lookupCold(keys[i])
		}
	}
}

// Range calls fn for every key in [lo, hi] in ascending order until fn
// returns false. In tiered mode the scan stitches a k-way merge across the
// memtable, the frozen run, and every overlapping segment, with newest-first
// shadowing and tombstone suppression.
func (d *DurableIndex) Range(lo, hi uint64, fn func(key, val uint64) bool) {
	if d.readsClosed.Load() {
		return
	}
	if d.tier != nil {
		d.tier.rangeMerged(lo, hi, fn)
		return
	}
	d.ix.Range(lo, hi, fn)
}

// Len reports the number of stored keys (across every tier, in tiered mode).
func (d *DurableIndex) Len() int {
	if d.readsClosed.Load() {
		return 0
	}
	if d.tier != nil {
		return int(d.tier.liveCount.Load())
	}
	return d.ix.Len()
}

// Bytes estimates resident size in bytes.
func (d *DurableIndex) Bytes() int {
	if d.readsClosed.Load() {
		return 0
	}
	return d.ix.Bytes()
}

// Stats reports the structural metrics of the paper's Table V.
func (d *DurableIndex) Stats() Stats {
	if d.readsClosed.Load() {
		return Stats{}
	}
	return d.ix.Stats()
}

// Height reports the deepest root-to-leaf path length.
func (d *DurableIndex) Height() int {
	if d.readsClosed.Load() {
		return 0
	}
	return d.ix.Height()
}

// LocalSkewness computes the lsn statistic over the current contents.
func (d *DurableIndex) LocalSkewness() float64 {
	if d.readsClosed.Load() {
		return 0
	}
	return d.ix.LocalSkewness()
}

// RetrainStats reports how many subtree retrains have run and the total time
// spent retraining.
func (d *DurableIndex) RetrainStats() (count int64, total time.Duration) {
	if d.readsClosed.Load() {
		return 0, 0
	}
	return d.ix.RetrainStats()
}

// Reconstructions reports how many full MARL rebuilds have run.
func (d *DurableIndex) Reconstructions() int {
	if d.readsClosed.Load() {
		return 0
	}
	return d.ix.Reconstructions()
}

// WriteTo serializes the current contents (read-only; it does not rotate the
// WAL — use Checkpoint for durable snapshots). Unlike the query surface it
// returns an explicit error on a closed handle: silently writing an empty
// snapshot would look like data loss. In tiered mode the in-memory format
// cannot represent the segment tiers, so WriteTo refuses (SnapshotAt streams
// the full tier instead) rather than silently serializing the memtable only.
func (d *DurableIndex) WriteTo(w io.Writer) (int64, error) {
	if d.readsClosed.Load() {
		return 0, ErrIndexClosed
	}
	if d.tier != nil {
		return 0, fmt.Errorf("%w: WriteTo cannot represent segments; use SnapshotAt", ErrNotTiered)
	}
	return d.ix.WriteTo(w)
}
