package chameleon

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"chameleon/internal/faultfs"
	"chameleon/internal/wal"
)

// This file is the DurableIndex's replication surface: commit-sequence
// numbers, the primary-side commit hook, the follower-side ordered replay
// path, and consistent snapshot streaming. The wire protocol and the
// replication state machine live in internal/wire and internal/repl; this
// layer only guarantees that commit sequences are monotonic, durable across
// restarts (the seq.meta sidecar), and that replicated batches apply in
// exactly the order the upstream committed them.

// ErrReplDivergence is returned by ReplicateBatch when a replicated record
// cannot replay cleanly against local state (inserting a key that is already
// present, deleting one that is absent, or an unknown op). The histories have
// forked: applying anyway would silently serve wrong data, so the batch is
// rejected before anything is logged — the local index is unchanged and
// stays readable, but the replication link must fail-stop.
var ErrReplDivergence = errors.New("chameleon: replicated batch diverges from local state")

// seqMetaName is the legacy sidecar name mapping snapshot/rotation sequence
// → commit sequence. It was rewritten in place (tmp + fsync + rename), which
// is not crash-safe: losing the directory block after the rename destroys
// the old version without durably installing the new one. It is still read
// for directories written by older versions, but never written.
const seqMetaName = "seq.meta"

// Current sidecar versions are written under fresh generation-numbered
// names (seq-<gen>.meta) and the newest decodable one wins, exactly like
// the tier manifest: a crash can only lose the not-yet-sealed newest file,
// never a previously durable one. Old generations are garbage-collected
// after each successful write.
const (
	seqMetaPrefix = "seq-"
	seqMetaSuffix = ".meta"
)

func seqMetaFileName(gen uint64) string {
	return fmt.Sprintf("%s%016d%s", seqMetaPrefix, gen, seqMetaSuffix)
}

// decodeSeqMeta parses one sidecar payload. A nil map means undecodable.
func decodeSeqMeta(data []byte) map[uint64]uint64 {
	var raw map[string]uint64
	if json.Unmarshal(data, &raw) != nil {
		return nil
	}
	meta := make(map[uint64]uint64, len(raw))
	for k, v := range raw {
		if seq, err := strconv.ParseUint(k, 10, 64); err == nil {
			meta[seq] = v
		}
	}
	return meta
}

func readSeqMetaFile(fsys faultfs.FS, path string) map[uint64]uint64 {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil
	}
	data, err := io.ReadAll(f)
	f.Close() //nolint:errcheck
	if err != nil {
		return nil
	}
	return decodeSeqMeta(data)
}

// readSeqMeta loads the sidecar: newest decodable generation wins, falling
// back to the legacy in-place file, tolerating absence and corruption (both
// mean "no recorded commit sequences" — commit sequences may then regress,
// which followers detect and fail-stop on rather than silently re-numbering
// history). The returned generation is the highest seen in the directory,
// decodable or not, so the next write is guaranteed to be the newest file.
func readSeqMeta(fsys faultfs.FS, dir string) (map[uint64]uint64, uint64) {
	var gens []uint64
	var maxGen uint64
	if entries, err := fsys.ReadDir(dir); err == nil {
		for _, e := range entries {
			if g, ok := parseSeq(e.Name(), seqMetaPrefix, seqMetaSuffix); ok {
				gens = append(gens, g)
				if g > maxGen {
					maxGen = g
				}
			}
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, g := range gens {
		if meta := readSeqMetaFile(fsys, filepath.Join(dir, seqMetaFileName(g))); meta != nil {
			return meta, maxGen
		}
	}
	if meta := readSeqMetaFile(fsys, filepath.Join(dir, seqMetaName)); meta != nil {
		return meta, maxGen
	}
	return make(map[uint64]uint64), maxGen
}

// writeSeqMetaLocked persists d.seqMeta as a fresh generation file (create,
// write, fsync). The caller's subsequent SyncDir seals the new directory
// entry; a crash before that loses only the new generation, and recovery
// falls back to the previous one — the state the caller's commit point had
// not yet superseded. Superseded generations (and any legacy in-place file)
// are removed best-effort after the new file is down. Callers hold d.mu.
func (d *DurableIndex) writeSeqMetaLocked() error {
	raw := make(map[string]uint64, len(d.seqMeta))
	for k, v := range d.seqMeta {
		raw[strconv.FormatUint(k, 10)] = v
	}
	data, err := json.Marshal(raw)
	if err != nil {
		return err
	}
	gen := d.seqMetaGen + 1
	path := filepath.Join(d.dir, seqMetaFileName(gen))
	f, err := d.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()         //nolint:errcheck
		d.fs.Remove(path) //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()         //nolint:errcheck
		d.fs.Remove(path) //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		d.fs.Remove(path) //nolint:errcheck
		return err
	}
	d.seqMetaGen = gen
	for g := gen - 1; g > 0 && g+8 > gen; g-- { // recent stragglers; older ones fell to earlier passes
		if d.fs.Remove(filepath.Join(d.dir, seqMetaFileName(g))) != nil {
			break
		}
	}
	if gen == 1 {
		// First versioned generation in this directory: retire the legacy
		// in-place file, if any, so it can never shadow a future state.
		d.fs.Remove(filepath.Join(d.dir, seqMetaName)) //nolint:errcheck
	}
	return nil
}

// CommitSeq reports the number of records ever durably committed through
// this index — the monotonic commit-sequence clock replication is built on.
// Record k of history carries sequence k (1-based); a follower's CommitSeq
// is therefore exactly the highest upstream sequence it has applied, because
// replicated records apply 1:1 in commit order. The value survives restarts
// via the seq.meta sidecar plus WAL replay counting.
func (d *DurableIndex) CommitSeq() uint64 { return d.commitSeq.Load() }

// seqWaitChan returns the current broadcast channel for commit-sequence
// advancement, lazily created so zero-value-adjacent tests don't need setup.
func (d *DurableIndex) seqWaitChan() chan struct{} {
	d.seqWaitMu.Lock()
	defer d.seqWaitMu.Unlock()
	if d.seqWaitCh == nil {
		d.seqWaitCh = make(chan struct{})
	}
	return d.seqWaitCh
}

// broadcastSeq wakes every WaitSeq waiter (close-and-replace, like the
// admission space channel). Called after every commit-sequence advance and
// on any transition that makes further waiting pointless (close, poison).
func (d *DurableIndex) broadcastSeq() {
	d.seqWaitMu.Lock()
	if d.seqWaitCh != nil {
		close(d.seqWaitCh)
	}
	d.seqWaitCh = make(chan struct{})
	d.seqWaitMu.Unlock()
}

// advanceCommitSeq moves the commit clock forward by n just-applied records
// and wakes waiters. Callers hold d.mu (commit and replication both advance
// under it, so the clock is monotonic).
func (d *DurableIndex) advanceCommitSeq(n uint64) {
	d.commitSeq.Add(n)
	d.broadcastSeq()
}

// WaitSeq blocks until CommitSeq reaches seq, the context dies, or the
// handle stops being able to advance (closed or poisoned — reported via the
// handle's terminal error rather than a hang). It is the read-your-writes
// primitive: a client holding a commit-sequence token from the primary calls
// WaitSeq(token) on a follower before reading.
func (d *DurableIndex) WaitSeq(ctx context.Context, seq uint64) error {
	for {
		ch := d.seqWaitChan()
		if d.commitSeq.Load() >= seq {
			return nil
		}
		if err := d.Err(); err != nil {
			return err
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// SetCommitHook installs fn to run inside every successful group commit,
// after the batch is durable and applied but before its writers are acked,
// with the batch's records and the commit sequence of the first one. A
// non-nil return from fn is reported to every writer in the batch *instead
// of* nil — the write is durable locally and applied, but the hook's
// condition (in practice: replication acknowledgement) was not met. This is
// the documented exception to the two-state cancellation contract: a write
// failed by the hook has ambiguous fate from the client's perspective and
// must be treated as "may exist".
//
// The hook runs under the index's commit lock: it serializes against
// checkpoints and Close, and it must not call back into the index.
func (d *DurableIndex) SetCommitHook(fn func(firstSeq uint64, recs []wal.Record) error) {
	d.mu.Lock()
	d.commitHook = fn
	d.mu.Unlock()
}

// ReplicateBatch is the follower-side write path: it applies records the
// upstream committed as sequences [firstSeq, firstSeq+len(recs)-1], logging
// them through this index's own WAL first so a follower's durability is as
// strong as a primary's. Unlike Insert/Delete it bypasses the group-commit
// queue — replicated history must apply in exactly upstream order, and the
// batch is already formed.
//
// Re-delivery is safe: records at or below the local commit sequence are
// duplicates of applied history and are skipped (the reconnect story — a
// follower re-pulls from its last applied sequence and may receive overlap).
// A batch that starts beyond the next expected sequence is refused with
// wal.ErrSeqGap, and a record that cannot replay cleanly is refused with
// ErrReplDivergence — in both cases nothing is logged or applied, so the
// local index stays consistent and readable while the replication link
// fail-stops.
func (d *DurableIndex) ReplicateBatch(firstSeq uint64, recs []wal.Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	tr := wal.SeqTracker{Applied: d.commitSeq.Load()}
	skip, err := tr.Admit(firstSeq, len(recs))
	if err != nil {
		return err
	}
	fresh := recs[skip:]
	if len(fresh) == 0 {
		return nil
	}

	// Validate the whole suffix before logging anything. Replicated records
	// replayed in order against a faithful copy of upstream state can never
	// be rejected — the upstream validated them before logging. A rejection
	// here therefore proves local state is not a faithful copy, and logging
	// first would either materialize the divergence on disk or force a
	// poison; refusing up front keeps the index clean.
	overlay := make(map[uint64]bool, len(fresh))
	for i, r := range fresh {
		seq := firstSeq + uint64(skip) + uint64(i)
		present, known := overlay[r.Key]
		if !known {
			var verr error
			present, verr = d.presentLocked(r.Key)
			if verr != nil {
				// A tiered visibility probe can fail on segment I/O. That is a
				// local fault, not a history fork: report it as itself so the
				// link retries instead of fail-stopping on divergence.
				return fmt.Errorf("replicate validate: %w", verr)
			}
		}
		switch r.Op {
		case wal.OpInsert:
			if present {
				return fmt.Errorf("%w: seq %d inserts key %d which is already present", ErrReplDivergence, seq, r.Key)
			}
		case wal.OpDelete:
			if !present {
				return fmt.Errorf("%w: seq %d deletes key %d which is absent", ErrReplDivergence, seq, r.Key)
			}
		default:
			return fmt.Errorf("%w: seq %d has unknown op %d", ErrReplDivergence, seq, r.Op)
		}
		overlay[r.Key] = r.Op == wal.OpInsert
	}

	start := time.Now()
	err = d.log.AppendAll(fresh)
	d.observeFsync(time.Since(start))
	if err != nil {
		if errors.Is(err, wal.ErrDiskFull) {
			d.diskFullBatches.Add(1)
		} else {
			d.walErrv.Store(errBox{err})
		}
		d.degraded.Store(true)
		return err
	}
	d.degraded.Store(false)
	d.walErrv.Store(errBox{})
	d.batches.Add(1)
	d.batchedOps.Add(uint64(len(fresh)))

	for _, r := range fresh {
		if aerr := d.applyRecordLocked(r); aerr != nil {
			// Validated above, so this can only be an internal failure after
			// the records are durable: memory and disk may now disagree.
			d.poisonLocked(fmt.Errorf("replicated apply: %w", aerr))
			return d.fail
		}
	}
	d.advanceCommitSeq(uint64(len(fresh)))
	if d.tier != nil {
		d.tier.maybeSignalFlush()
	}
	return nil
}

// SnapshotAt streams a consistent snapshot of the current contents to w and
// reports the commit sequence it is as-of. It holds the commit lock for the
// duration, so no batch can commit mid-stream: the bytes written correspond
// exactly to the returned sequence. Used by the primary to bootstrap
// followers that are behind WAL retention. A legacy directory streams the
// learned structure (core.WriteTo); a tiered one streams a CHAMTBN1 segment
// bundle (see tierrepl.go) — RestoreSnapshot accepts either on either kind
// of receiver.
func (d *DurableIndex) SnapshotAt(w io.Writer) (asOfSeq uint64, n int64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, 0, ErrIndexClosed
	}
	if d.fail != nil {
		// A poisoned index still serves reads, but its memory may not match
		// any durable state — shipping it to a follower would replicate the
		// divergence.
		return 0, 0, d.fail
	}
	if d.tier != nil {
		n, err = d.tier.writeBundle(w)
	} else {
		n, err = d.ix.WriteTo(w)
	}
	if err != nil {
		return 0, n, err
	}
	return d.commitSeq.Load(), n, nil
}

// RestoreSnapshot replaces the index's contents with a snapshot streamed
// from an upstream (the bootstrap half of SnapshotAt) and adopts asOfSeq as
// the local commit sequence, making the restored state and its sequence
// durable together (legacy: a checkpoint; tiered: a fresh L1 segment behind
// a manifest commit — see tier.restoreFlat). The stream's leading 8 bytes
// select the decoder, so a tiered follower can bootstrap from a legacy
// primary and vice versa. On a decode failure the local state is unchanged;
// on a durability failure after the in-memory install the handle is
// poisoned, exactly like BulkLoad — the restored state would otherwise have
// no durable counterpart.
func (d *DurableIndex) RestoreSnapshot(r io.Reader, asOfSeq uint64) error {
	br := bufio.NewReader(r)
	head, _ := br.Peek(8)
	isBundle := len(head) == 8 && string(head) == bundleMagic

	if d.tier != nil {
		// Decode to a flat sorted run before taking any locks: a slow or
		// corrupt stream must not stall commits.
		var keys, vals []uint64
		var err error
		if isBundle {
			keys, vals, err = readBundleFlat(br)
		} else {
			scratch := New(d.opts.Options)
			if _, err = scratch.inner.ReadFrom(br); err == nil {
				keys, vals = scratch.AppendPairs(nil, nil)
			}
		}
		if err != nil {
			return err
		}
		if err := d.tier.restoreFlat(keys, vals, asOfSeq); err != nil {
			return err
		}
		d.broadcastSeq()
		return nil
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	if isBundle {
		// Flatten the bundle into the in-memory index; the validated merge
		// output is strictly ascending, exactly what BulkLoad wants.
		keys, vals, err := readBundleFlat(br)
		if err != nil {
			return err
		}
		if err := d.ix.BulkLoad(keys, vals); err != nil {
			return err
		}
	} else {
		if _, err := d.ix.inner.ReadFrom(br); err != nil {
			return err
		}
		// inner.ReadFrom stops any running retrainer; restart it like openDirFS
		// does, so a bootstrap mid-life doesn't silently end maintenance.
		if d.opts.RetrainEvery > 0 {
			d.ix.inner.StartRetrainer(d.opts.RetrainEvery)
		}
	}
	d.commitSeq.Store(asOfSeq)
	if err := d.checkpointLocked(); err != nil {
		d.poisonLocked(fmt.Errorf("snapshot-restore checkpoint: %w", err))
		return d.fail
	}
	d.broadcastSeq()
	return nil
}
