package chameleon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"chameleon/internal/faultfs"
	"chameleon/internal/wal"
)

// This file is the DurableIndex's replication surface: commit-sequence
// numbers, the primary-side commit hook, the follower-side ordered replay
// path, and consistent snapshot streaming. The wire protocol and the
// replication state machine live in internal/wire and internal/repl; this
// layer only guarantees that commit sequences are monotonic, durable across
// restarts (the seq.meta sidecar), and that replicated batches apply in
// exactly the order the upstream committed them.

// ErrReplDivergence is returned by ReplicateBatch when a replicated record
// cannot replay cleanly against local state (inserting a key that is already
// present, deleting one that is absent, or an unknown op). The histories have
// forked: applying anyway would silently serve wrong data, so the batch is
// rejected before anything is logged — the local index is unchanged and
// stays readable, but the replication link must fail-stop.
var ErrReplDivergence = errors.New("chameleon: replicated batch diverges from local state")

// seqMetaName is the sidecar mapping snapshot sequence → commit sequence. It
// is rewritten (tmp + fsync + rename) immediately before each checkpoint's
// snapshot rename, so the checkpoint's single directory fsync seals both
// files together. Recovery adds the replayed WAL record count to the chosen
// snapshot's entry; a snapshot missing from the map (pre-replication
// directories, or the narrow crash window where the snapshot rename
// persisted but the sidecar rename did not) falls back to the replayed count
// alone — commit sequences may then regress, which followers detect and
// fail-stop on rather than silently re-numbering history.
const seqMetaName = "seq.meta"

// readSeqMeta loads the sidecar, tolerating absence and corruption: both
// mean "no recorded commit sequences" (the legacy fallback documented on
// seqMetaName), never a failed open.
func readSeqMeta(fsys faultfs.FS, dir string) map[uint64]uint64 {
	meta := make(map[uint64]uint64)
	f, err := fsys.OpenFile(filepath.Join(dir, seqMetaName), os.O_RDONLY, 0)
	if err != nil {
		return meta
	}
	data, err := io.ReadAll(f)
	f.Close() //nolint:errcheck
	if err != nil {
		return meta
	}
	var raw map[string]uint64
	if json.Unmarshal(data, &raw) != nil {
		return meta
	}
	for k, v := range raw {
		if seq, err := strconv.ParseUint(k, 10, 64); err == nil {
			meta[seq] = v
		}
	}
	return meta
}

// writeSeqMetaLocked persists d.seqMeta with the snapshot discipline
// (temp file, fsync, rename). The caller's subsequent SyncDir makes the
// rename durable. Callers hold d.mu.
func (d *DurableIndex) writeSeqMetaLocked() error {
	raw := make(map[string]uint64, len(d.seqMeta))
	for k, v := range d.seqMeta {
		raw[strconv.FormatUint(k, 10)] = v
	}
	data, err := json.Marshal(raw)
	if err != nil {
		return err
	}
	path := filepath.Join(d.dir, seqMetaName)
	tmp := path + ".tmp"
	f, err := d.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()        //nolint:errcheck
		d.fs.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()        //nolint:errcheck
		d.fs.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		d.fs.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := d.fs.Rename(tmp, path); err != nil {
		d.fs.Remove(tmp) //nolint:errcheck
		return err
	}
	return nil
}

// CommitSeq reports the number of records ever durably committed through
// this index — the monotonic commit-sequence clock replication is built on.
// Record k of history carries sequence k (1-based); a follower's CommitSeq
// is therefore exactly the highest upstream sequence it has applied, because
// replicated records apply 1:1 in commit order. The value survives restarts
// via the seq.meta sidecar plus WAL replay counting.
func (d *DurableIndex) CommitSeq() uint64 { return d.commitSeq.Load() }

// seqWaitChan returns the current broadcast channel for commit-sequence
// advancement, lazily created so zero-value-adjacent tests don't need setup.
func (d *DurableIndex) seqWaitChan() chan struct{} {
	d.seqWaitMu.Lock()
	defer d.seqWaitMu.Unlock()
	if d.seqWaitCh == nil {
		d.seqWaitCh = make(chan struct{})
	}
	return d.seqWaitCh
}

// broadcastSeq wakes every WaitSeq waiter (close-and-replace, like the
// admission space channel). Called after every commit-sequence advance and
// on any transition that makes further waiting pointless (close, poison).
func (d *DurableIndex) broadcastSeq() {
	d.seqWaitMu.Lock()
	if d.seqWaitCh != nil {
		close(d.seqWaitCh)
	}
	d.seqWaitCh = make(chan struct{})
	d.seqWaitMu.Unlock()
}

// advanceCommitSeq moves the commit clock forward by n just-applied records
// and wakes waiters. Callers hold d.mu (commit and replication both advance
// under it, so the clock is monotonic).
func (d *DurableIndex) advanceCommitSeq(n uint64) {
	d.commitSeq.Add(n)
	d.broadcastSeq()
}

// WaitSeq blocks until CommitSeq reaches seq, the context dies, or the
// handle stops being able to advance (closed or poisoned — reported via the
// handle's terminal error rather than a hang). It is the read-your-writes
// primitive: a client holding a commit-sequence token from the primary calls
// WaitSeq(token) on a follower before reading.
func (d *DurableIndex) WaitSeq(ctx context.Context, seq uint64) error {
	for {
		ch := d.seqWaitChan()
		if d.commitSeq.Load() >= seq {
			return nil
		}
		if err := d.Err(); err != nil {
			return err
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// SetCommitHook installs fn to run inside every successful group commit,
// after the batch is durable and applied but before its writers are acked,
// with the batch's records and the commit sequence of the first one. A
// non-nil return from fn is reported to every writer in the batch *instead
// of* nil — the write is durable locally and applied, but the hook's
// condition (in practice: replication acknowledgement) was not met. This is
// the documented exception to the two-state cancellation contract: a write
// failed by the hook has ambiguous fate from the client's perspective and
// must be treated as "may exist".
//
// The hook runs under the index's commit lock: it serializes against
// checkpoints and Close, and it must not call back into the index.
func (d *DurableIndex) SetCommitHook(fn func(firstSeq uint64, recs []wal.Record) error) {
	d.mu.Lock()
	d.commitHook = fn
	d.mu.Unlock()
}

// ReplicateBatch is the follower-side write path: it applies records the
// upstream committed as sequences [firstSeq, firstSeq+len(recs)-1], logging
// them through this index's own WAL first so a follower's durability is as
// strong as a primary's. Unlike Insert/Delete it bypasses the group-commit
// queue — replicated history must apply in exactly upstream order, and the
// batch is already formed.
//
// Re-delivery is safe: records at or below the local commit sequence are
// duplicates of applied history and are skipped (the reconnect story — a
// follower re-pulls from its last applied sequence and may receive overlap).
// A batch that starts beyond the next expected sequence is refused with
// wal.ErrSeqGap, and a record that cannot replay cleanly is refused with
// ErrReplDivergence — in both cases nothing is logged or applied, so the
// local index stays consistent and readable while the replication link
// fail-stops.
func (d *DurableIndex) ReplicateBatch(firstSeq uint64, recs []wal.Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	tr := wal.SeqTracker{Applied: d.commitSeq.Load()}
	skip, err := tr.Admit(firstSeq, len(recs))
	if err != nil {
		return err
	}
	fresh := recs[skip:]
	if len(fresh) == 0 {
		return nil
	}

	// Validate the whole suffix before logging anything. Replicated records
	// replayed in order against a faithful copy of upstream state can never
	// be rejected — the upstream validated them before logging. A rejection
	// here therefore proves local state is not a faithful copy, and logging
	// first would either materialize the divergence on disk or force a
	// poison; refusing up front keeps the index clean.
	overlay := make(map[uint64]bool, len(fresh))
	for i, r := range fresh {
		seq := firstSeq + uint64(skip) + uint64(i)
		present, known := overlay[r.Key]
		if !known {
			_, present = d.ix.Lookup(r.Key)
		}
		switch r.Op {
		case wal.OpInsert:
			if present {
				return fmt.Errorf("%w: seq %d inserts key %d which is already present", ErrReplDivergence, seq, r.Key)
			}
		case wal.OpDelete:
			if !present {
				return fmt.Errorf("%w: seq %d deletes key %d which is absent", ErrReplDivergence, seq, r.Key)
			}
		default:
			return fmt.Errorf("%w: seq %d has unknown op %d", ErrReplDivergence, seq, r.Op)
		}
		overlay[r.Key] = r.Op == wal.OpInsert
	}

	start := time.Now()
	err = d.log.AppendAll(fresh)
	d.observeFsync(time.Since(start))
	if err != nil {
		if errors.Is(err, wal.ErrDiskFull) {
			d.diskFullBatches.Add(1)
		} else {
			d.walErrv.Store(errBox{err})
		}
		d.degraded.Store(true)
		return err
	}
	d.degraded.Store(false)
	d.walErrv.Store(errBox{})
	d.batches.Add(1)
	d.batchedOps.Add(uint64(len(fresh)))

	for _, r := range fresh {
		var aerr error
		switch r.Op {
		case wal.OpInsert:
			aerr = d.ix.Insert(r.Key, r.Val)
		case wal.OpDelete:
			aerr = d.ix.Delete(r.Key)
		}
		if aerr != nil {
			// Validated above, so this can only be an internal failure after
			// the records are durable: memory and disk may now disagree.
			d.poisonLocked(fmt.Errorf("replicated apply: %w", aerr))
			return d.fail
		}
	}
	d.advanceCommitSeq(uint64(len(fresh)))
	return nil
}

// SnapshotAt streams a consistent snapshot of the current contents to w and
// reports the commit sequence it is as-of. It holds the commit lock for the
// duration, so no batch can commit mid-stream: the bytes written correspond
// exactly to the returned sequence. Used by the primary to bootstrap
// followers that are behind WAL retention.
func (d *DurableIndex) SnapshotAt(w io.Writer) (asOfSeq uint64, n int64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, 0, ErrIndexClosed
	}
	if d.fail != nil {
		// A poisoned index still serves reads, but its memory may not match
		// any durable state — shipping it to a follower would replicate the
		// divergence.
		return 0, 0, d.fail
	}
	n, err = d.ix.WriteTo(w)
	if err != nil {
		return 0, n, err
	}
	return d.commitSeq.Load(), n, nil
}

// RestoreSnapshot replaces the index's contents with a snapshot streamed
// from an upstream (the bootstrap half of SnapshotAt) and adopts asOfSeq as
// the local commit sequence, then checkpoints so the restored state and its
// sequence are durable together. On a decode failure the in-memory index is
// unchanged (core.ReadFrom installs nothing on error); on a checkpoint
// failure the handle is poisoned, exactly like BulkLoad — the restored
// memory state would otherwise have no durable counterpart.
func (d *DurableIndex) RestoreSnapshot(r io.Reader, asOfSeq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	if _, err := d.ix.inner.ReadFrom(r); err != nil {
		return err
	}
	// inner.ReadFrom stops any running retrainer; restart it like openDirFS
	// does, so a bootstrap mid-life doesn't silently end maintenance.
	if d.opts.RetrainEvery > 0 {
		d.ix.inner.StartRetrainer(d.opts.RetrainEvery)
	}
	d.commitSeq.Store(asOfSeq)
	if err := d.checkpointLocked(); err != nil {
		d.poisonLocked(fmt.Errorf("snapshot-restore checkpoint: %w", err))
		return d.fail
	}
	d.broadcastSeq()
	return nil
}
