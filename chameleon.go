// Package chameleon is an update-efficient learned index for locally skewed
// data, a from-scratch Go implementation of the Chameleon index (ICDE 2024).
//
// A Chameleon index maps uint64 keys to uint64 values through a shallow tree
// whose inner nodes route with exact linear interpolation and whose leaves
// are Error Bounded Hashing (EBH) nodes — hash tables whose capacity is
// sized so the collision probability stays below a target τ, with the
// maximum placement offset recorded so lookups probe a bounded window. The
// structure is chosen by a multi-agent construction: a DARE agent shapes the
// upper levels from the global distribution and a TSMDP agent refines each
// lower subtree from its local distribution; both have deterministic
// cost-model equivalents used by default. A background retraining goroutine,
// synchronized through per-interval locks, keeps the structure healthy under
// sustained inserts and deletes without blocking foreground operations.
//
// An Index is safe for concurrent use by multiple goroutines. The interval
// locks are reader-shared and writer-exclusive: any number of Lookup and
// Range calls proceed in parallel on the same interval, while Insert, Delete,
// and background retraining take their interval exclusively — concurrent
// readers scale without ever observing a half-retrained subtree.
//
// Quick start:
//
//	ix := chameleon.New(chameleon.Options{})
//	if err := ix.BulkLoad(sortedKeys, nil); err != nil { ... }
//	v, ok := ix.Lookup(k)
//	_ = ix.Insert(k2, v2)
//	ix.StartRetrainer(10 * time.Second)
//	defer ix.Close()
package chameleon

import (
	"io"
	"os"
	"time"

	"chameleon/internal/core"
	"chameleon/internal/index"
	"chameleon/internal/rl"
)

// Options configures a Chameleon index. The zero value selects the paper's
// defaults (τ = 0.45, α = 131, cost-model construction policies).
type Options struct {
	// Tau is the EBH collision-probability target τ of Theorem 1.
	Tau float64
	// Alpha is the hash factor α of Eq. (2).
	Alpha float64
	// Seed makes construction deterministic.
	Seed uint64
	// RetrainEvery, when positive, starts the background retrainer
	// automatically after each BulkLoad with this period.
	RetrainEvery time.Duration
	// ReconstructThreshold triggers a full MARL reconstruction once
	// cumulative updates exceed this multiple of the built size (the
	// paper's complete-rebuild threshold). Zero selects the default of 4;
	// a negative value disables reconstruction.
	ReconstructThreshold float64
	// UseTrainedAgents, when non-nil, replaces the deterministic cost-model
	// policies with trained RL agents (see cmd/chameleon-train).
	UseTrainedAgents *Agents
	// Workers bounds the goroutines used by parallel bulk load and snapshot
	// recovery. Zero means one per available CPU; 1 forces the serial path.
	// The built structure is bit-identical for any worker count.
	Workers int
	// LockedReads disables the versioned optimistic read path (DESIGN.md
	// §13): every Lookup/Range takes the shared interval lock instead of a
	// seqlock-validated lock-free probe. Benchmarking baseline and escape
	// hatch; leave false in production.
	LockedReads bool
}

// Agents carries trained RL agents loaded from disk.
type Agents struct {
	TSMDP *rl.TSMDP
	DARE  *rl.DARE
}

// LoadAgents restores agents saved by cmd/chameleon-train.
func LoadAgents(tsmdpPath, darePath string) (*Agents, error) {
	ts, err := rl.LoadTSMDP(rl.DefaultTSMDPConfig(), tsmdpPath)
	if err != nil {
		return nil, err
	}
	da, err := rl.LoadDARE(rl.DefaultDAREConfig(), darePath)
	if err != nil {
		return nil, err
	}
	return &Agents{TSMDP: ts, DARE: da}, nil
}

// Index is the public handle. Construct with New.
type Index struct {
	inner *core.Index
	opts  Options
}

// Stats re-exports the structural metrics (Table V of the paper).
type Stats = index.Stats

// Error sentinels re-exported from the shared index contract.
var (
	ErrKeyNotFound  = index.ErrKeyNotFound
	ErrDuplicateKey = index.ErrDuplicateKey
	// ErrUnsortedKeys is returned by BulkLoad when keys are not strictly
	// ascending; ErrMismatchedValues when vals is non-nil with a different
	// length than keys.
	ErrUnsortedKeys     = core.ErrUnsortedKeys
	ErrMismatchedValues = core.ErrMismatchedValues
)

// New creates an empty index.
func New(opts Options) *Index {
	cfg := core.Config{
		Tau:                  opts.Tau,
		Alpha:                opts.Alpha,
		Seed:                 opts.Seed,
		RetrainEvery:         opts.RetrainEvery,
		ReconstructThreshold: opts.ReconstructThreshold,
		Workers:              opts.Workers,
		LockedReads:          opts.LockedReads,
	}
	if a := opts.UseTrainedAgents; a != nil {
		cfg.Dare = a.DARE
		cfg.Policy = a.TSMDP
	} else {
		dcfg := rl.DefaultDAREConfig()
		if opts.Seed != 0 {
			dcfg.Seed = opts.Seed
		}
		env := dcfg.Env
		if opts.Tau > 0 && opts.Tau < 1 {
			env.Tau = opts.Tau
			dcfg.Env = env
		}
		cfg.Dare = rl.NewCostDARE(dcfg)
		cfg.Policy = rl.NewCostPolicy(env)
	}
	return &Index{inner: core.New(cfg), opts: opts}
}

// BulkLoad (re)builds the index from keys sorted ascending with no
// duplicates; vals may be nil (value = key). If Options.RetrainEvery is set,
// the background retrainer is (re)started.
func (ix *Index) BulkLoad(keys, vals []uint64) error {
	ix.inner.StopRetrainer()
	if err := ix.inner.BulkLoad(keys, vals); err != nil {
		return err
	}
	if ix.opts.RetrainEvery > 0 {
		ix.inner.StartRetrainer(ix.opts.RetrainEvery)
	}
	return nil
}

// Lookup returns the value stored for key.
func (ix *Index) Lookup(key uint64) (uint64, bool) { return ix.inner.Lookup(key) }

// LookupBatch resolves keys[i] into vals[i], found[i] against one tree
// snapshot — the batched form the server's GET coalescing uses. vals and
// found must be at least len(keys) long.
func (ix *Index) LookupBatch(keys, vals []uint64, found []bool) {
	ix.inner.LookupBatch(keys, vals, found)
}

// ReadFallbacks reports how many lookups exhausted their optimistic retries
// and fell back to the shared interval lock (always 0 under LockedReads).
func (ix *Index) ReadFallbacks() uint64 { return ix.inner.ReadFallbacks() }

// Insert adds key→val; it returns ErrDuplicateKey if key is present.
func (ix *Index) Insert(key, val uint64) error { return ix.inner.Insert(key, val) }

// Delete removes key; it returns ErrKeyNotFound if absent.
func (ix *Index) Delete(key uint64) error { return ix.inner.Delete(key) }

// Range calls fn for every key in [lo, hi] in ascending order until fn
// returns false. EBH leaves are unordered, so a range scan materializes and
// sorts the overlapping leaves; point workloads are the design target.
func (ix *Index) Range(lo, hi uint64, fn func(key, val uint64) bool) {
	ix.inner.Range(lo, hi, fn)
}

// AppendPairs appends the full contents to keys/vals in ascending key order
// and returns the extended slices — the bulk dump the durable tier uses to
// freeze a memtable into a sorted run.
func (ix *Index) AppendPairs(keys, vals []uint64) ([]uint64, []uint64) {
	return ix.inner.AppendPairs(keys, vals)
}

// Len reports the number of stored keys.
func (ix *Index) Len() int { return ix.inner.Len() }

// Bytes estimates resident size in bytes.
func (ix *Index) Bytes() int { return ix.inner.Bytes() }

// Stats reports the structural metrics of the paper's Table V.
func (ix *Index) Stats() Stats { return ix.inner.Stats() }

// Height reports the deepest root-to-leaf path length.
func (ix *Index) Height() int { return ix.inner.Height() }

// LocalSkewness computes the lsn statistic (Definition 3) over the current
// contents.
func (ix *Index) LocalSkewness() float64 { return ix.inner.LocalSkewness() }

// StartRetrainer launches the background retraining goroutine with the given
// period (Section V; the paper evaluates 10s). No-op if already running.
func (ix *Index) StartRetrainer(period time.Duration) { ix.inner.StartRetrainer(period) }

// StopRetrainer halts the background goroutine, waiting for any in-flight
// subtree retrain to finish.
func (ix *Index) StopRetrainer() { ix.inner.StopRetrainer() }

// PauseRetrainer suspends background maintenance (timer-driven retrain passes
// and threshold-triggered full reconstructions) without stopping the
// goroutine — a cheap atomic flip the durable layer uses while its write
// queue is saturated, so structural maintenance stops competing with
// foreground writes. Resume with ResumeRetrainer.
func (ix *Index) PauseRetrainer() { ix.inner.PauseRetrainer() }

// ResumeRetrainer re-enables background maintenance after PauseRetrainer.
func (ix *Index) ResumeRetrainer() { ix.inner.ResumeRetrainer() }

// RetrainerPaused reports whether background maintenance is suspended.
func (ix *Index) RetrainerPaused() bool { return ix.inner.RetrainerPaused() }

// RetrainStats reports how many subtree retrains have run and the total time
// spent retraining.
func (ix *Index) RetrainStats() (count int64, total time.Duration) {
	return ix.inner.RetrainStats()
}

// Reconstructions reports how many full MARL rebuilds the update-threshold
// trigger has run (see Options.ReconstructThreshold).
func (ix *Index) Reconstructions() int { return ix.inner.Reconstructions() }

// Close stops the retrainer. The index remains usable for foreground
// operations afterwards.
func (ix *Index) Close() error {
	ix.inner.StopRetrainer()
	return nil
}

// WriteTo serializes the learned structure (tree shape, leaf slot layouts)
// so a later ReadFrom restores it without retraining. Stop the retrainer and
// quiesce writers first (Close stops the retrainer): the snapshot walk is not
// taken under interval locks.
func (ix *Index) WriteTo(w io.Writer) (int64, error) { return ix.inner.WriteTo(w) }

// ReadFrom replaces the index contents with a structure written by WriteTo.
// The configured construction policies are kept for future retraining, and —
// exactly as after BulkLoad — the background retrainer is (re)started when
// Options.RetrainEvery is set. On error the index is left unchanged.
func (ix *Index) ReadFrom(r io.Reader) (int64, error) {
	n, err := ix.inner.ReadFrom(r)
	if err != nil {
		return n, err
	}
	if ix.opts.RetrainEvery > 0 {
		ix.inner.StartRetrainer(ix.opts.RetrainEvery)
	}
	return n, nil
}

// Save writes the index to a file; Load restores it.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load restores an index saved with Save into a new Index with the given
// options.
func Load(path string, opts Options) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix := New(opts)
	if _, err := ix.ReadFrom(f); err != nil {
		return nil, err
	}
	return ix, nil
}
