package chameleon

import (
	"errors"
	"time"
)

// HealthState is the durable index's operating state — the degraded-read-only
// state machine of DESIGN.md §9.
//
//	       queue full → shed/block     disk full (retryable)
//	  ┌────────── ok ────────────────────────→ degraded ──┐
//	  │            ↑   space freed / checkpoint rotation   │
//	  │            └───────────────────────────────────────┘
//	  │ apply-after-durable-log failure,
//	  │ commit-point fsync failure                Close()
//	  └──────────→ poisoned ──────────┐      (any state) ──→ closed
//	                reads still served┘
//
// ok: writes and reads flow. degraded: the WAL cannot currently accept
// appends (disk full or a sticky WAL error) but memory and disk have not
// diverged — reads serve normally, writes fail cleanly and may succeed again
// (freed space, or a checkpoint rotating in a fresh log). poisoned: memory
// and disk may disagree; writes are refused forever, reads keep serving the
// in-memory state. closed: the handle is released; reads return zero values.
type HealthState int

const (
	// HealthOK means writes and reads both flow normally.
	HealthOK HealthState = iota
	// HealthDegraded means reads are served but the WAL is currently
	// rejecting appends (disk full, or a sticky WAL I/O error). The in-memory
	// index matches the durable state; writes may succeed again without
	// reopening.
	HealthDegraded
	// HealthPoisoned means in-memory and on-disk state may diverge: writes
	// are permanently refused, reads keep serving memory. Discard the handle
	// and re-OpenDir to recover the durable state.
	HealthPoisoned
	// HealthClosed means Close was called.
	HealthClosed
)

// String renders the state for logs and dashboards.
func (s HealthState) String() string {
	switch s {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded-read-only"
	case HealthPoisoned:
		return "poisoned"
	case HealthClosed:
		return "closed"
	}
	return "unknown"
}

// FsyncBucketBounds are the upper bounds (exclusive) of the commit-latency
// histogram in Health.FsyncLatency; the last histogram slot counts
// everything at or above the final bound.
var FsyncBucketBounds = [...]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// Health is a point-in-time snapshot of the durable index's overload and
// fault state: the coarse state machine plus the counters an operator alarms
// on. All counters are cumulative since OpenDir.
type Health struct {
	// State is the coarse operating state; Err is the explanatory error for
	// any state other than HealthOK (the sticky poison cause, the last WAL
	// failure, or ErrIndexClosed).
	State HealthState
	Err   error

	// QueueDepth is the number of admitted-but-not-yet-committed mutations
	// (including the batch currently being committed); QueueBytes is their
	// WAL footprint; QueueHighWater is the deepest the queue has ever been.
	QueueDepth     int
	QueueBytes     int64
	QueueHighWater int

	// ShedOps counts mutations rejected with ErrOverloaded at admission;
	// CancelledOps counts mutations that returned ctx.Err() before reaching a
	// committing batch. Neither was ever logged or applied.
	ShedOps      uint64
	CancelledOps uint64

	// Batches counts group commits that reached the WAL durably; BatchedOps
	// is the total mutations they carried (BatchedOps/Batches is the mean
	// batch size, the group-commit amortization factor); MaxBatch is the
	// largest single batch.
	Batches    uint64
	BatchedOps uint64
	MaxBatch   int

	// DiskFullBatches counts batches that failed with the retryable
	// ErrDiskFull (each failed cleanly: nothing applied, nothing acked).
	DiskFullBatches uint64

	// FsyncLatency is a histogram of per-batch WAL write+fsync time.
	// FsyncLatency[i] counts batches under FsyncBucketBounds[i]; the final
	// slot counts the rest. Under SyncEveryOp this is fsync-dominated.
	FsyncLatency [len(FsyncBucketBounds) + 1]uint64

	// RetrainPauses counts overload episodes that paused the background
	// retrainer; RetrainPaused reports whether it is paused right now.
	RetrainPauses uint64
	RetrainPaused bool

	// CommitSeq is the commit-sequence clock: the number of records ever
	// durably committed through this index (see DurableIndex.CommitSeq). On a
	// follower it equals the highest upstream sequence applied.
	CommitSeq uint64

	// Tier is the tiered-storage slice of the snapshot; nil when the
	// directory runs in legacy monolithic-checkpoint mode.
	Tier *TierHealth
}

// TierHealth is a point-in-time snapshot of the tiered storage engine: the
// shape of the disk-resident tier, the volatile tiers awaiting flush, and
// the flush/compaction/cold-read counters an operator watches to size the
// memtable and the compaction trigger. All counters are cumulative since
// OpenDir. On a sharded index the per-shard snapshots are summed (maxima for
// the last-duration gauges), matching the rest of the Health aggregation.
type TierHealth struct {
	// Segments is the published segment-file count; L0Segments of those are
	// level-0 flush outputs not yet compacted. SegmentBytes is their total
	// on-disk size.
	Segments     int
	L0Segments   int
	SegmentBytes int64

	// LiveKeys is the exact visible-key count across every tier.
	// MemtableKeys and DeadKeys are the hot inserts and pending tombstones
	// the next flush will fold in; FrozenKeys is the size of a capture
	// currently being flushed (0 when no flush is in flight).
	LiveKeys     int64
	MemtableKeys int
	DeadKeys     int
	FrozenKeys   int

	// FlushedSeq is the manifest watermark F: every record at or below it is
	// inside segments, and the WAL is truncated only past it. Gen is the
	// manifest generation.
	FlushedSeq uint64
	Gen        uint64

	// Flushes/Compactions count committed manifest advances of each kind;
	// the Err counters count failed attempts (each retried — a failed flush
	// keeps its frozen run in memory). FlushedBytes and CompactBytes are the
	// segment bytes each path wrote — their ratio against the WAL traffic is
	// the tier's write amplification.
	Flushes      uint64
	FlushErrs    uint64
	Compactions  uint64
	CompactErrs  uint64
	FlushedBytes uint64
	CompactBytes uint64

	// LastFlushMicros/LastCompactMicros are the wall-clock durations of the
	// most recent successful flush and compaction.
	LastFlushMicros   int64
	LastCompactMicros int64

	// ColdReads counts lookups resolved from a segment (hit or tombstone);
	// ColdReadErrs counts segment I/O failures on the read path.
	// ColdRankErrorSum accumulates |model-predicted − actual| rank distance
	// across cold reads: ColdRankErrorSum/ColdReads is the mean model error,
	// bounded by the configured ε.
	ColdReads        uint64
	ColdReadErrs     uint64
	ColdRankErrorSum uint64

	// LastFlushErr is the most recent flush failure, nil after any success.
	LastFlushErr error
}

// Health reports the durable index's current state and counters. It is safe
// to call concurrently with writers, and on a poisoned or closed handle — and
// it never blocks behind in-flight I/O: a monitoring probe must keep
// answering precisely when a batch is wedged on a stalled or dragging fsync,
// so Health reads only atomics and qmu (which is never held across I/O),
// deliberately avoiding d.mu and the WAL's own mutex.
func (d *DurableIndex) Health() Health {
	var h Health

	d.qmu.Lock()
	closed := d.qclosed
	h.QueueDepth = d.pendingOps
	h.QueueBytes = d.pendingBytes
	h.QueueHighWater = d.highWater
	d.qmu.Unlock()

	fail := d.loadFail()
	walErr, _ := d.walErrv.Load().(errBox)
	switch {
	case fail != nil:
		h.State, h.Err = HealthPoisoned, fail
	case closed:
		h.State, h.Err = HealthClosed, ErrIndexClosed
	case d.degraded.Load():
		h.State = HealthDegraded
		if h.Err = walErr.err; h.Err == nil {
			h.Err = ErrDiskFull
		}
	default:
		h.State = HealthOK
	}

	h.ShedOps = d.shedOps.Load()
	h.CancelledOps = d.cancelledOps.Load()
	h.Batches = d.batches.Load()
	h.BatchedOps = d.batchedOps.Load()
	h.MaxBatch = int(d.maxBatch.Load())
	h.DiskFullBatches = d.diskFullBatches.Load()
	for i := range h.FsyncLatency {
		h.FsyncLatency[i] = d.fsyncHist[i].Load()
	}
	h.RetrainPauses = d.retrainPauses.Load()
	h.RetrainPaused = d.retrainPaused.Load()
	h.CommitSeq = d.commitSeq.Load()
	if d.tier != nil {
		h.Tier = d.tier.health()
	}
	return h
}

// health snapshots the tier's counters. Like Health it reads only atomics
// plus deadMu (never held across I/O), so a probe answers even while a flush
// is wedged on disk.
func (t *tier) health() *TierHealth {
	th := &TierHealth{
		LiveKeys:          t.liveCount.Load(),
		MemtableKeys:      t.d.ix.Len(),
		FlushedSeq:        t.flushedSeq.Load(),
		Gen:               t.gen.Load(),
		Flushes:           t.flushes.Load(),
		FlushErrs:         t.flushErrs.Load(),
		Compactions:       t.compactions.Load(),
		CompactErrs:       t.compactErrs.Load(),
		FlushedBytes:      t.flushedBytes.Load(),
		CompactBytes:      t.compactBytes.Load(),
		LastFlushMicros:   t.lastFlushUS.Load(),
		LastCompactMicros: t.lastCompactUS.Load(),
		ColdReads:         t.coldReads.Load(),
		ColdReadErrs:      t.coldErrs.Load(),
		ColdRankErrorSum:  t.coldDist.Load(),
	}
	t.deadMu.RLock()
	th.DeadKeys = len(t.dead)
	t.deadMu.RUnlock()
	if fr := t.frozen.Load(); fr != nil {
		th.FrozenKeys = len(fr.keys)
	}
	for _, r := range t.segs.Load().readers {
		m := r.Meta()
		th.Segments++
		if m.Level == 0 {
			th.L0Segments++
		}
		th.SegmentBytes += m.Bytes
	}
	if b, _ := t.lastFlushErrv.Load().(errBox); b.err != nil {
		th.LastFlushErr = b.err
	}
	return th
}

// mergeTierHealth folds one shard's tier snapshot into an aggregate (sums
// for counters and sizes, maxima for the last-duration gauges, first
// non-nil error).
func mergeTierHealth(agg *TierHealth, th *TierHealth) *TierHealth {
	if th == nil {
		return agg
	}
	if agg == nil {
		agg = &TierHealth{}
	}
	agg.Segments += th.Segments
	agg.L0Segments += th.L0Segments
	agg.SegmentBytes += th.SegmentBytes
	agg.LiveKeys += th.LiveKeys
	agg.MemtableKeys += th.MemtableKeys
	agg.DeadKeys += th.DeadKeys
	agg.FrozenKeys += th.FrozenKeys
	agg.FlushedSeq += th.FlushedSeq
	agg.Gen += th.Gen
	agg.Flushes += th.Flushes
	agg.FlushErrs += th.FlushErrs
	agg.Compactions += th.Compactions
	agg.CompactErrs += th.CompactErrs
	agg.FlushedBytes += th.FlushedBytes
	agg.CompactBytes += th.CompactBytes
	if th.LastFlushMicros > agg.LastFlushMicros {
		agg.LastFlushMicros = th.LastFlushMicros
	}
	if th.LastCompactMicros > agg.LastCompactMicros {
		agg.LastCompactMicros = th.LastCompactMicros
	}
	agg.ColdReads += th.ColdReads
	agg.ColdReadErrs += th.ColdReadErrs
	agg.ColdRankErrorSum += th.ColdRankErrorSum
	if agg.LastFlushErr == nil {
		agg.LastFlushErr = th.LastFlushErr
	}
	return agg
}

// Err reports the terminal condition of the handle: the sticky poison cause,
// ErrIndexClosed after Close, or nil while the handle is usable (including
// degraded — degraded is visible via Health, not Err, because it is
// recoverable). It is the error-returning companion to the bool-returning
// read surface, and like Health it never blocks behind in-flight I/O.
func (d *DurableIndex) Err() error {
	if fail := d.loadFail(); fail != nil {
		return fail
	}
	if d.readsClosed.Load() {
		return ErrIndexClosed
	}
	return nil
}

// ErrNotPrimary is returned for writes sent to a node that is not the
// replication primary — a follower, or a deposed primary that has been
// fenced by a higher-epoch promotion. It is not retryable against the same
// node: the caller must redirect to the current primary.
var ErrNotPrimary = errors.New("chameleon: not primary: node is a replica or has been fenced")

// ErrReplicaLagging marks a write that is durable *locally* but whose
// replication acknowledgement did not arrive in time, and the sequence-token
// wait that cannot be satisfied before its deadline. For a write it is the
// one deliberately ambiguous outcome in the API (see SetCommitHook): the
// record may or may not survive a failover, so callers must treat it as
// "may exist" — never as a clean rejection.
var ErrReplicaLagging = errors.New("chameleon: replica lagging behind required commit sequence")

// ReplRole is a node's place in the replication topology.
type ReplRole int

const (
	// RoleNone means replication is not configured; the node is a plain
	// standalone index.
	RoleNone ReplRole = iota
	// RolePrimary accepts writes and ships committed batches to followers.
	RolePrimary
	// RoleFollower applies the primary's stream and serves reads (optionally
	// gated on commit-sequence tokens for read-your-writes).
	RoleFollower
	// RoleFenced is a deposed primary: a higher-epoch promotion happened, so
	// the node permanently refuses writes with ErrNotPrimary. Reads still
	// serve (possibly stale) local state.
	RoleFenced
)

// String renders the role for logs and the STATS surface.
func (r ReplRole) String() string {
	switch r {
	case RoleNone:
		return "none"
	case RolePrimary:
		return "primary"
	case RoleFollower:
		return "follower"
	case RoleFenced:
		return "fenced"
	}
	return "unknown"
}

// ReplHealth is a point-in-time snapshot of a node's replication state,
// reported alongside (not inside) the index's own Health: the index can be
// perfectly healthy while replication is stalled, and MergeReplHealth is
// where the two meet.
type ReplHealth struct {
	// Role and Epoch locate the node in the topology; Epoch increases by one
	// at every promotion and is the fencing token.
	Role  ReplRole
	Epoch uint64

	// LastApplied is the highest commit sequence applied locally (equal to
	// the index's CommitSeq). UpstreamSeq is the primary's commit sequence as
	// of the last successful pull (followers only); Lag is the difference.
	// AckedSeq, on a primary, is the highest sequence every connected
	// follower is known to have applied.
	LastApplied uint64
	UpstreamSeq uint64
	Lag         uint64
	AckedSeq    uint64

	// Connected reports whether a follower's link to its upstream is
	// currently established; Reconnects counts link re-establishments and
	// SnapshotBootstraps counts full-snapshot catch-ups.
	Connected          bool
	Reconnects         uint64
	SnapshotBootstraps uint64

	// Stalled means replication has made no progress for longer than the
	// configured stall threshold (a primary with no acking follower, or a
	// follower that cannot reach its upstream). Diverged means replay
	// divergence was detected and the link fail-stopped — the replica must
	// be rebuilt; it will not heal.
	Stalled  bool
	Diverged bool

	// ShardLags, on a sharded node, is the per-shard staleness vector: for a
	// follower, each shard's upstream commit clock minus its local one; for a
	// primary, each shard's ring head minus its acked cursor. Nil on
	// unsharded nodes.
	ShardLags []uint64
}

// State maps replication health onto the HealthState scale: divergence is as
// bad as poison (the replica's data cannot be trusted to match the primary
// and the condition is permanent), a stalled or disconnected link is
// degraded (the node serves increasingly stale reads but nothing is wrong
// with the data), and everything else is ok.
func (r ReplHealth) State() HealthState {
	switch {
	case r.Diverged:
		return HealthPoisoned
	case r.Stalled, r.Role == RoleFollower && !r.Connected:
		return HealthDegraded
	default:
		return HealthOK
	}
}

// MergeReplHealth folds a node's replication state into its index health,
// worst-wins, mirroring the sharded aggregation order (poisoned > degraded >
// ok; closed stays closed — a released handle's replication state is
// irrelevant). A healthy index with stalled replication therefore reports
// degraded, and a diverged follower reports poisoned, so operators alarm on
// one state field no matter which layer is hurting.
func MergeReplHealth(h Health, r ReplHealth) Health {
	if h.State == HealthClosed || h.State == HealthPoisoned {
		return h
	}
	switch rs := r.State(); rs {
	case HealthPoisoned:
		h.State = HealthPoisoned
		if h.Err == nil {
			h.Err = ErrReplDivergence
		}
	case HealthDegraded:
		if h.State == HealthOK {
			h.State = HealthDegraded
			if h.Err == nil {
				h.Err = ErrReplicaLagging
			}
		}
	}
	return h
}

// errBox lets error values of differing concrete types share one
// atomic.Value slot.
type errBox struct{ err error }

// loadFail reads the poison cause mirrored out of d.fail for lock-free
// health probes.
func (d *DurableIndex) loadFail() error {
	b, _ := d.failv.Load().(errBox)
	return b.err
}

// observeFsync records one batch's WAL write+fsync latency in the histogram.
func (d *DurableIndex) observeFsync(dur time.Duration) {
	i := 0
	for ; i < len(FsyncBucketBounds); i++ {
		if dur < FsyncBucketBounds[i] {
			break
		}
	}
	d.fsyncHist[i].Add(1)
}
