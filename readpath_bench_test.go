package chameleon_test

// Read-path micro-benchmarks for the optimistic seqlock lookup (DESIGN.md
// §13): the versioned lock-free path vs the always-locked baseline
// (Options.LockedReads) vs a raw Go map as the no-structure floor, serial
// and with RunParallel. The full read experiment with percentiles, writer
// interference, and remote pipelined GETs is `-exp read` (BENCH_read.json).

import (
	"testing"

	"chameleon"
	"chameleon/internal/dataset"
	"chameleon/internal/harness"
)

func buildReadBench(b *testing.B, locked bool) *chameleon.Index {
	b.Helper()
	keys := dataset.Generate(dataset.FACE, 200_000, 42)
	ix := chameleon.New(chameleon.Options{Seed: 1, LockedReads: locked})
	if err := ix.BulkLoad(keys, nil); err != nil {
		b.Fatal(err)
	}
	return ix
}

func benchLookupPath(b *testing.B, locked bool) {
	ix := buildReadBench(b, locked)
	keys := dataset.Generate(dataset.FACE, 200_000, 42)
	probes := harness.Probes(keys, 1<<16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(probes[i&(1<<16-1)])
	}
}

// BenchmarkLookupOptimistic is the default versioned lock-free read path.
func BenchmarkLookupOptimistic(b *testing.B) { benchLookupPath(b, false) }

// BenchmarkLookupLocked forces the pre-optimization shared-lock read path;
// the delta against BenchmarkLookupOptimistic is the seqlock win.
func BenchmarkLookupLocked(b *testing.B) { benchLookupPath(b, true) }

// BenchmarkLookupMap is the floor: a plain map probe with zero index
// structure, ordering, or concurrency safety.
func BenchmarkLookupMap(b *testing.B) {
	keys := dataset.Generate(dataset.FACE, 200_000, 42)
	m := make(map[uint64]uint64, len(keys))
	for _, k := range keys {
		m[k] = k
	}
	probes := harness.Probes(keys, 1<<16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[probes[i&(1<<16-1)]]
	}
}

func benchLookupParallel(b *testing.B, locked bool) {
	ix := buildReadBench(b, locked)
	keys := dataset.Generate(dataset.FACE, 200_000, 42)
	probes := harness.Probes(keys, 1<<16, 7)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ix.Lookup(probes[i&(1<<16-1)])
			i++
		}
	})
}

// BenchmarkLookupOptimisticParallel exercises reader scaling: optimistic
// readers share nothing, while the locked baseline bounces every interval's
// lock word between readers.
func BenchmarkLookupOptimisticParallel(b *testing.B) { benchLookupParallel(b, false) }
func BenchmarkLookupLockedParallel(b *testing.B)     { benchLookupParallel(b, true) }

func benchLookupHot(b *testing.B, locked bool) {
	ix := buildReadBench(b, locked)
	keys := dataset.Generate(dataset.FACE, 200_000, 42)
	// 16 hot keys spread across the keyspace: small enough that the model
	// cache holds them all, the shape of a skewed read-mostly workload.
	hot := make([]uint64, 16)
	for i := range hot {
		hot[i] = keys[(i*len(keys))/len(hot)+7]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(hot[i&15])
	}
}

// BenchmarkLookupHotOptimistic measures the model-cache fast path: a cached
// hot key costs one seqlock version check and zero tree or leaf memory
// touches. BenchmarkLookupHotLocked pays the full locked descend every time.
func BenchmarkLookupHotOptimistic(b *testing.B) { benchLookupHot(b, false) }
func BenchmarkLookupHotLocked(b *testing.B)     { benchLookupHot(b, true) }
