package chameleon

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"chameleon/internal/faultfs"
)

// TestGroupCommitConcurrentWriters is the group-commit stress test (run under
// -race in CI): many writers on disjoint key ranges, concurrent checkpoints,
// concurrent deletes, then a reopen that must surface every acknowledged
// write. It exercises the leader-follower handoff, batch validation, and the
// batch-vs-checkpoint interleaving under real scheduling pressure.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	per := 200
	if testing.Short() {
		per = 60
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w+1) * 1_000_000
			for i := 0; i < per; i++ {
				k := base + uint64(i)
				if err := d.Insert(k, k+7); err != nil {
					t.Errorf("writer %d: Insert(%d): %v", w, k, err)
					return
				}
				// Every third key is deleted again: delete validation and
				// apply ordering ride the same batches as the inserts.
				if i%3 == 0 {
					if err := d.Delete(k); err != nil {
						t.Errorf("writer %d: Delete(%d): %v", w, k, err)
						return
					}
				}
			}
		}(w)
	}
	// Checkpoints race the batches: a rotation must never cut a batch between
	// its WAL append and its in-memory apply.
	stop := make(chan struct{})
	var ckpt sync.WaitGroup
	ckpt.Add(1)
	go func() {
		defer ckpt.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := d.Checkpoint(); err != nil {
					t.Errorf("Checkpoint: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	ckpt.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer re.Close()
	want := 0
	for w := 0; w < writers; w++ {
		base := uint64(w+1) * 1_000_000
		for i := 0; i < per; i++ {
			k := base + uint64(i)
			v, ok := re.Lookup(k)
			if i%3 == 0 {
				if ok {
					t.Fatalf("writer %d: acked delete of %d undone", w, k)
				}
				continue
			}
			want++
			if !ok || v != k+7 {
				t.Fatalf("writer %d: acked key %d = (%d,%v), want (%d,true)", w, k, v, ok, k+7)
			}
		}
	}
	if re.Len() != want {
		t.Fatalf("recovered Len = %d, want %d", re.Len(), want)
	}
}

// TestGroupCommitBatchValidation pins the serial-equivalence of intra-batch
// validation: when many goroutines race to insert the same key, exactly one
// wins and the rest see ErrDuplicateKey — whether the attempts land in one
// batch or several.
func TestGroupCommitBatchValidation(t *testing.T) {
	d, err := OpenDir(t.TempDir(), durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for round := uint64(0); round < 20; round++ {
		key := 10 + round
		var ok, dup atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				switch err := d.Insert(key, uint64(g)); {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrDuplicateKey):
					dup.Add(1)
				default:
					t.Errorf("Insert(%d): %v", key, err)
				}
			}(g)
		}
		wg.Wait()
		if ok.Load() != 1 || dup.Load() != 7 {
			t.Fatalf("round %d: %d winners, %d duplicates (want 1/7)", round, ok.Load(), dup.Load())
		}
		if err := d.Delete(key + 1000); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("Delete(absent) = %v, want ErrKeyNotFound", err)
		}
	}
}

// wAck is one writer's view of a key it mutated through a crashing run.
type wAck struct {
	val      uint64
	present  bool
	unstable bool // a later attempt on this key errored: either state is legal
}

// TestGroupCommitCrashMatrix cuts power mid-group-commit at a sweep of step
// budgets while concurrent writers are mid-batch. The contract: no
// acknowledged write is ever lost, unacked batch tails may vanish, and
// nothing ever applies partially — an errored op may surface or not, but if
// its key is present it holds exactly the attempted value, and no key outside
// the attempted set exists (no phantom from a torn multi-record frame).
func TestGroupCommitCrashMatrix(t *testing.T) {
	total := runGroupCommitWorkload(t, t.TempDir(), 1<<40, 0, nil)
	if total < 20 {
		t.Fatalf("workload consumed only %d steps — matrix degenerate", total)
	}
	stride := total / 60
	if stride < 1 {
		stride = 1
	}
	if testing.Short() {
		stride = total / 12
	}
	for k := int64(0); k < total; k += stride {
		dir := t.TempDir()
		acked := make(map[uint64]wAck)
		runGroupCommitWorkload(t, dir, k, int(k%3), acked)
		verifyGroupCommitRecovered(t, dir, k, acked)
	}
}

const (
	gcWriters  = 4
	gcOpsPer   = 12
	gcFlipKey  = uint64(77)
	gcFlipOps  = 8
	gcBaseStep = uint64(1_000_000)
)

// runGroupCommitWorkload drives gcWriters concurrent inserters (disjoint key
// ranges) plus one flip-flop writer that alternately inserts and deletes one
// key, all through a CrashFS with the given step budget. Acked state merges
// into acked (nil to skip). Each writer also asserts the no-ack-after-failure
// invariant: once one of its ops errors, no later op may succeed.
func runGroupCommitWorkload(t *testing.T, dir string, budget int64, tear int, acked map[uint64]wAck) int64 {
	t.Helper()
	cfs := faultfs.NewCrashFS(faultfs.OS, budget)
	cfs.Tear = tear
	d, err := openDirFS(dir, durableOpts(), cfs)
	if err != nil {
		return cfs.Steps()
	}
	var mu sync.Mutex // guards acked
	record := func(key uint64, st wAck) {
		if acked == nil {
			return
		}
		mu.Lock()
		acked[key] = st
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < gcWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w+1) * gcBaseStep
			failed := false
			for i := uint64(0); i < gcOpsPer; i++ {
				k := base + i
				err := d.Insert(k, k+7)
				if err == nil {
					if failed {
						t.Errorf("writer %d: Insert(%d) acked after an earlier failure", w, k)
					}
					record(k, wAck{val: k + 7, present: true})
					continue
				}
				failed = true
				record(k, wAck{val: k + 7, unstable: true})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		failed := false
		for i := uint64(0); i < gcFlipOps; i++ {
			var err error
			st := wAck{val: 5000 + i}
			if i%2 == 0 {
				err = d.Insert(gcFlipKey, st.val)
				st.present = true
			} else {
				err = d.Delete(gcFlipKey)
				st.present = false
			}
			if err != nil {
				failed = true
			}
			// Once any attempt on the flip key failed, every later state is
			// uncertain: the errored frame may or may not be on disk.
			st.unstable = failed
			record(gcFlipKey, st)
		}
	}()
	wg.Wait()
	d.Checkpoint() //nolint:errcheck // a failed checkpoint must not lose anything either
	d.Close()      //nolint:errcheck
	return cfs.Steps()
}

// verifyGroupCommitRecovered reopens dir on the real filesystem and checks
// the oracle: acked stable keys exact, unstable keys either-way but never
// half-applied, and no phantoms outside the attempted key space.
func verifyGroupCommitRecovered(t *testing.T, dir string, k int64, acked map[uint64]wAck) {
	t.Helper()
	re, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatalf("crash@%d: recovery failed: %v", k, err)
	}
	defer re.Close()
	for key, st := range acked {
		v, ok := re.Lookup(key)
		if st.unstable {
			// Either state is legal; but a present key must hold an attempted
			// value — anything else means a frame applied half-way.
			if ok && key != gcFlipKey && v != st.val {
				t.Fatalf("crash@%d: unstable key %d holds %d, not the attempted %d", k, key, v, st.val)
			}
			if ok && key == gcFlipKey && (v < 5000 || v >= 5000+gcFlipOps) {
				t.Fatalf("crash@%d: flip key holds %d, never attempted", k, v)
			}
			continue
		}
		if st.present && (!ok || v != st.val) {
			t.Fatalf("crash@%d: acked key %d = (%d,%v), want (%d,true)", k, key, v, ok, st.val)
		}
		if !st.present && ok {
			t.Fatalf("crash@%d: acked delete of %d undone", k, key)
		}
	}
	re.Range(0, ^uint64(0), func(key, _ uint64) bool {
		if key == gcFlipKey {
			return true
		}
		for w := 0; w < gcWriters; w++ {
			base := uint64(w+1) * gcBaseStep
			if key >= base && key < base+gcOpsPer {
				return true
			}
		}
		t.Fatalf("crash@%d: phantom key %d", k, key)
		return false
	})
}
