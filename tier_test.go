package chameleon

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"chameleon/internal/faultfs"
	"chameleon/internal/wal"
)

func tieredOpts() DirOptions {
	o := durableOpts()
	o.Tiered = true
	// Flushes are explicit in most tests (the background trigger would make
	// crash budgets nondeterministic); the concurrency test lowers this.
	o.MemtableBytes = 1 << 30
	return o
}

// TestTieredRoundTrip: writes survive flush, compaction, and reopen, with
// reads served from every tier (memtable, dead set, segments).
func TestTieredRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, tieredOpts())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 3_000)
	for i := range keys {
		keys[i] = uint64(i)*13 + 1
	}
	if err := d.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if err := d.Insert(1_000_000+i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete(keys[10]); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// Cold reads: the memtable is empty now, so these come from segments.
	if v, ok := d.Lookup(1_000_042); !ok || v != 42 {
		t.Fatalf("cold lookup = %d,%v want 42,true", v, ok)
	}
	if _, ok := d.Lookup(keys[10]); ok {
		t.Fatal("deleted key resurrected from segment")
	}
	// A delete of a segment-resident key must go through the dead set.
	if err := d.Delete(1_000_042); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup(1_000_042); ok {
		t.Fatal("dead-set tombstone not shadowing segment")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup(1_000_042); ok {
		t.Fatal("tombstone lost by compaction")
	}
	wantLen := len(keys) + 500 - 2
	if got := d.Len(); got != wantLen {
		t.Fatalf("Len = %d, want %d", got, wantLen)
	}
	h := d.Health()
	if h.Tier == nil || h.Tier.Flushes < 2 || h.Tier.Segments == 0 {
		t.Fatalf("tier health incomplete: %+v", h.Tier)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir, tieredOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != wantLen {
		t.Fatalf("recovered Len = %d, want %d", got, wantLen)
	}
	if _, ok := re.Lookup(1_000_042); ok {
		t.Fatal("tombstone lost across reopen")
	}
	if v, ok := re.Lookup(1_000_041); !ok || v != 41 {
		t.Fatalf("recovered lookup = %d,%v want 41,true", v, ok)
	}
	// Range must stitch segments and stay strictly ascending.
	var prev uint64
	count := 0
	re.Range(0, ^uint64(0), func(k, _ uint64) bool {
		if count > 0 && k <= prev {
			t.Fatalf("range out of order: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != wantLen {
		t.Fatalf("range visited %d keys, want %d", count, wantLen)
	}
}

// TestTieredWriteToRefused: the legacy monolithic serializer cannot
// represent segments, so tiered handles refuse it rather than silently
// truncating state.
func TestTieredWriteToRefused(t *testing.T) {
	d, err := OpenDir(t.TempDir(), tieredOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.WriteTo(&bytes.Buffer{}); !errors.Is(err, ErrNotTiered) {
		t.Fatalf("WriteTo on tiered handle: %v, want ErrNotTiered", err)
	}
}

// TestTieredCrashMatrix is the tiered twin of TestDurableCrashMatrix: the
// workload exercises flush, the dead-set delete path, compaction, and
// post-compaction writes, crashing at every filesystem step with all three
// tear modes, then recovering through the manifest + WAL-delta path and
// checking the same oracle (acked writes survive, acked deletes stay
// deleted, no phantoms). Because flushes rotate the WAL and garbage-collect
// old logs keyed off the flushed watermark, the sweep covers every crash
// point between a manifest commit and its WAL truncation — the coupling the
// legacy checkpoint path got wrong.
func TestTieredCrashMatrix(t *testing.T) {
	total := runTieredCrashWorkload(t, t.TempDir(), 1<<40, 0, nil)
	if total < 30 {
		t.Fatalf("workload consumed only %d steps — matrix degenerate", total)
	}
	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	for k := int64(0); k < total; k += stride {
		dir := t.TempDir()
		acked := make(map[uint64]ackState)
		runTieredCrashWorkload(t, dir, k, int(k%3), acked)
		verifyTieredRecovered(t, dir, k, acked)
	}
}

func runTieredCrashWorkload(t *testing.T, dir string, budget int64, tear int, acked map[uint64]ackState) int64 {
	t.Helper()
	cfs := faultfs.NewCrashFS(faultfs.OS, budget)
	cfs.Tear = tear
	d, err := openDirFS(dir, tieredOpts(), cfs)
	if err != nil {
		return cfs.Steps()
	}
	ack := func(key, val uint64, present bool, err error) {
		if acked == nil {
			return
		}
		if err != nil {
			if st, ok := acked[key]; ok {
				st.unstable = true
				acked[key] = st
			}
			return
		}
		acked[key] = ackState{val: val, present: present}
	}
	base := []uint64{100, 200, 300, 400, 500, 600, 700, 800}
	if err := d.BulkLoad(base, nil); err == nil && acked != nil {
		for _, k := range base {
			acked[k] = ackState{val: k, present: true}
		}
	}
	for i := uint64(0); i < 6; i++ {
		k := 1000 + i
		ack(k, i, true, d.Insert(k, i))
	}
	ack(200, 0, false, d.Delete(200)) // bulk-loaded key: segment-resident, dead-set path
	d.Flush() //nolint:errcheck // a failed flush must not lose anything either
	for i := uint64(0); i < 6; i++ {
		k := 2000 + i
		ack(k, i+50, true, d.Insert(k, i+50))
	}
	ack(1002, 0, false, d.Delete(1002)) // flushed in the L0 segment above
	ack(300, 0, false, d.Delete(300))
	d.Flush() //nolint:errcheck
	for i := uint64(0); i < 3; i++ {
		k := 3000 + i
		ack(k, i+90, true, d.Insert(k, i+90))
	}
	d.Flush()   //nolint:errcheck
	d.Compact() //nolint:errcheck
	for i := uint64(0); i < 3; i++ {
		k := 4000 + i
		ack(k, i+70, true, d.Insert(k, i+70))
	}
	d.Close() //nolint:errcheck
	return cfs.Steps()
}

func verifyTieredRecovered(t *testing.T, dir string, k int64, acked map[uint64]ackState) {
	t.Helper()
	re, err := OpenDir(dir, tieredOpts())
	if err != nil {
		t.Fatalf("crash@%d: recovery failed: %v", k, err)
	}
	defer re.Close()
	for key, st := range acked {
		if st.unstable {
			continue
		}
		v, ok := re.Lookup(key)
		if st.present && !ok {
			t.Fatalf("crash@%d: acked key %d lost", k, key)
		}
		if st.present && v != st.val {
			t.Fatalf("crash@%d: acked key %d has value %d, want %d", k, key, v, st.val)
		}
		if !st.present && ok {
			t.Fatalf("crash@%d: acked delete of %d undone", k, key)
		}
	}
	attempted := func(key uint64) bool {
		for _, b := range []uint64{100, 200, 300, 400, 500, 600, 700, 800} {
			if key == b {
				return true
			}
		}
		return (key >= 1000 && key < 1006) || (key >= 2000 && key < 2006) ||
			(key >= 3000 && key < 3003) || (key >= 4000 && key < 4003)
	}
	re.Range(0, ^uint64(0), func(key, _ uint64) bool {
		if !attempted(key) {
			t.Fatalf("crash@%d: phantom key %d", k, key)
		}
		return true
	})
}

// TestTieredWALGCCrashBetweenFlushAndTruncate is the directed regression for
// the checkpoint/WAL-GC coupling: WAL files must only be removed because the
// flushed commit-sequence watermark covers them, never because an operation
// "succeeded". The sweep crashes at every filesystem step inside a flush —
// including every point between its manifest commit and the WAL removals
// that follow — and proves every previously-acked write recovers.
func TestTieredWALGCCrashBetweenFlushAndTruncate(t *testing.T) {
	// Dry run: measure the step budget consumed before the second flush
	// starts, and the total, so the sweep brackets exactly that flush.
	dir := t.TempDir()
	cfs := faultfs.NewCrashFS(faultfs.OS, 1<<40)
	d, err := openDirFS(dir, tieredOpts(), cfs)
	if err != nil {
		t.Fatal(err)
	}
	seed := func(d *DurableIndex) map[uint64]uint64 {
		acked := make(map[uint64]uint64)
		for i := uint64(0); i < 8; i++ {
			if err := d.Insert(10+i, i); err == nil {
				acked[10+i] = i
			}
		}
		d.Flush() //nolint:errcheck
		for i := uint64(0); i < 8; i++ {
			if err := d.Insert(100+i, i+5); err == nil {
				acked[100+i] = i + 5
			}
		}
		return acked
	}
	seed(d)
	before := cfs.Steps()
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	after := cfs.Steps()
	d.Close() //nolint:errcheck
	if after <= before {
		t.Fatalf("flush consumed no steps (%d..%d)", before, after)
	}

	for k := before; k <= after; k++ {
		dir := t.TempDir()
		cfs := faultfs.NewCrashFS(faultfs.OS, k)
		cfs.Tear = int(k % 3)
		d, err := openDirFS(dir, tieredOpts(), cfs)
		if err != nil {
			continue
		}
		acked := seed(d)
		d.Flush() //nolint:errcheck // the crash lands in here
		d.Close() //nolint:errcheck

		re, err := OpenDir(dir, tieredOpts())
		if err != nil {
			t.Fatalf("crash@%d: recovery failed: %v", k, err)
		}
		for key, want := range acked {
			if v, ok := re.Lookup(key); !ok || v != want {
				t.Fatalf("crash@%d in flush: acked key %d = %d,%v want %d,true", k, key, v, ok, want)
			}
		}
		re.Close() //nolint:errcheck
	}
}

// TestTieredOracleUnderConcurrency is the merged-read property test:
// concurrent writers mutate through the group-commit path while background
// flushes and explicit compactions run, and at every quiesce point the
// merged read path (memtable → dead set → frozen → segments) must agree
// exactly with a flat in-memory oracle. A background reader hammers
// Lookup/Range throughout for -race coverage of the lock-free cold path.
func TestTieredOracleUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	o := tieredOpts()
	o.MemtableBytes = 8 << 10 // small: background flushes fire mid-round
	d, err := OpenDir(dir, o)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	oracle := make(map[uint64]uint64)

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			d.Lookup(rng.Uint64() % 4096)
			prev, n := uint64(0), 0
			d.Range(0, 4096, func(k, _ uint64) bool {
				if n > 0 && k <= prev {
					t.Errorf("concurrent range out of order: %d after %d", k, prev)
					return false
				}
				prev, n = k, n+1
				return n < 64
			})
		}
	}()

	const writers = 4
	const rounds = 5
	const opsPerWriter = 250
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w, round int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*writers + w)))
				for i := 0; i < opsPerWriter; i++ {
					// Each writer owns keys ≡ w (mod writers), so validation
					// races never cross goroutines.
					key := uint64(rng.Intn(1024))*uint64(writers) + uint64(w)
					mu.Lock()
					_, present := oracle[key]
					mu.Unlock()
					if present {
						if err := d.Delete(key); err == nil {
							mu.Lock()
							delete(oracle, key)
							mu.Unlock()
						}
					} else {
						val := rng.Uint64()
						if err := d.Insert(key, val); err == nil {
							mu.Lock()
							oracle[key] = val
							mu.Unlock()
						}
					}
				}
			}(w, round)
		}
		wg.Wait()
		switch round % 3 {
		case 0:
			if err := d.Flush(); err != nil {
				t.Fatalf("round %d: flush: %v", round, err)
			}
		case 1:
			if err := d.Compact(); err != nil {
				t.Fatalf("round %d: compact: %v", round, err)
			}
		}
		compareWithOracle(t, d, oracle, fmt.Sprintf("round %d", round))
	}
	close(stop)
	readerWG.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir, tieredOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	compareWithOracle(t, re, oracle, "after reopen")
}

type tieredReadSurface interface {
	Lookup(uint64) (uint64, bool)
	Range(uint64, uint64, func(uint64, uint64) bool)
	Len() int
}

func compareWithOracle(t *testing.T, d tieredReadSurface, oracle map[uint64]uint64, phase string) {
	t.Helper()
	got := make(map[uint64]uint64, len(oracle))
	var prev uint64
	n := 0
	d.Range(0, ^uint64(0), func(k, v uint64) bool {
		if n > 0 && k <= prev {
			t.Fatalf("%s: range out of order: %d after %d", phase, k, prev)
		}
		prev = k
		n++
		got[k] = v
		return true
	})
	if len(got) != len(oracle) {
		t.Fatalf("%s: merged read has %d keys, oracle %d", phase, len(got), len(oracle))
	}
	for k, want := range oracle {
		if v, ok := got[k]; !ok || v != want {
			t.Fatalf("%s: key %d = %d,%v in range, oracle %d", phase, k, v, ok, want)
		}
		if v, ok := d.Lookup(k); !ok || v != want {
			t.Fatalf("%s: key %d = %d,%v in lookup, oracle %d", phase, k, v, ok, want)
		}
	}
	if d.Len() != len(oracle) {
		t.Fatalf("%s: Len = %d, oracle %d", phase, d.Len(), len(oracle))
	}
}

// TestTieredMigration: a legacy checkpoint directory opened with Tiered set
// keeps serving its data, the first flush moves it into segments, and the
// legacy snapshot (now covered by the watermark) is garbage-collected; the
// directory reopens tiered from then on, flag or no flag.
func TestTieredMigration(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{5, 10, 15, 20, 25}
	if err := d.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(30, 99); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	td, err := OpenDir(dir, tieredOpts())
	if err != nil {
		t.Fatal(err)
	}
	if td.tier == nil {
		t.Fatal("Tiered flag did not attach a tier to a legacy directory")
	}
	if v, ok := td.Lookup(30); !ok || v != 99 {
		t.Fatalf("migrated lookup = %d,%v want 99,true", v, ok)
	}
	if err := td.Insert(35, 1); err != nil {
		t.Fatal(err)
	}
	if err := td.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := faultfs.OS.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			t.Fatalf("legacy snapshot %s survived the flush that covers it", e.Name())
		}
	}
	if err := td.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen WITHOUT the flag: the manifest is sticky.
	re, err := OpenDir(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.tier == nil {
		t.Fatal("directory with a manifest reopened in legacy mode")
	}
	if re.Len() != len(keys)+2 {
		t.Fatalf("Len = %d after migration round trip, want %d", re.Len(), len(keys)+2)
	}
}

// TestTieredSharded: the tier composes with range partitioning — each shard
// gets its own segment directory, flushes independently, and the aggregate
// health sums the per-shard tiers.
func TestTieredSharded(t *testing.T) {
	dir := t.TempDir()
	opts := ShardDirOptions{DirOptions: tieredOpts(), Shards: 4}
	s, err := OpenShardedDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 2_000)
	for i := range keys {
		keys[i] = uint64(i) * 1_000_003 // spread across equi-width shards
	}
	if err := s.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := s.Insert(i*999_999_937+7, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil { // tiered shards flush on Checkpoint
		t.Fatal(err)
	}
	h := s.Health()
	if h.Tier == nil || h.Tier.Segments == 0 {
		t.Fatalf("sharded tier health missing: %+v", h.Tier)
	}
	if h.Tier.LiveKeys != int64(s.Len()) {
		t.Fatalf("aggregate LiveKeys %d != Len %d", h.Tier.LiveKeys, s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenShardedDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(keys)+100 {
		t.Fatalf("recovered sharded Len = %d, want %d", re.Len(), len(keys)+100)
	}
}

// TestTieredReplicateBatch: the follower-side ordered replay validates and
// applies against every tier — deleting a segment-resident key must succeed
// (dead-set tombstone), re-inserting it must succeed, and divergence is
// still refused.
func TestTieredReplicateBatch(t *testing.T) {
	d, err := OpenDir(t.TempDir(), tieredOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.ReplicateBatch(1, []wal.Record{
		{Op: wal.OpInsert, Key: 1, Val: 10},
		{Op: wal.OpInsert, Key: 2, Val: 20},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil { // push both into a segment
		t.Fatal(err)
	}
	if err := d.ReplicateBatch(3, []wal.Record{
		{Op: wal.OpDelete, Key: 1},           // segment-resident: dead-set path
		{Op: wal.OpInsert, Key: 1, Val: 11},  // re-insert over the tombstone
		{Op: wal.OpDelete, Key: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok := d.Lookup(1); !ok || v != 11 {
		t.Fatalf("key 1 = %d,%v want 11,true", v, ok)
	}
	if _, ok := d.Lookup(2); ok {
		t.Fatal("replicated delete of segment-resident key did not shadow")
	}
	if got := d.CommitSeq(); got != 5 {
		t.Fatalf("CommitSeq = %d, want 5", got)
	}
	// Divergence: deleting an absent key is refused before logging.
	err = d.ReplicateBatch(6, []wal.Record{{Op: wal.OpDelete, Key: 777}})
	if !errors.Is(err, ErrReplDivergence) {
		t.Fatalf("delete of absent key: %v, want ErrReplDivergence", err)
	}
}

// TestTieredSnapshotBundleRoundTrip: every pairing of snapshot producer and
// consumer (tiered→tiered, tiered→legacy, legacy→tiered) restores the exact
// contents and adopts the as-of sequence, including tombstones pending in
// the dead set at capture time.
func TestTieredSnapshotBundleRoundTrip(t *testing.T) {
	src, err := OpenDir(t.TempDir(), tieredOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	want := make(map[uint64]uint64)
	for i := uint64(0); i < 400; i++ {
		if err := src.Insert(i*7, i); err != nil {
			t.Fatal(err)
		}
		want[i*7] = i
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	// Post-flush delta: hot inserts plus deletes of segment-resident keys,
	// so the bundle must carry memtable and dead-set state too.
	for i := uint64(0); i < 50; i++ {
		if err := src.Insert(100_000+i, i+3); err != nil {
			t.Fatal(err)
		}
		want[100_000+i] = i + 3
	}
	for i := uint64(0); i < 20; i++ {
		if err := src.Delete(i * 7 * 4); err != nil {
			t.Fatal(err)
		}
		delete(want, i*7*4)
	}

	var buf bytes.Buffer
	asOf, _, err := src.SnapshotAt(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if asOf != src.CommitSeq() {
		t.Fatalf("asOf %d != CommitSeq %d", asOf, src.CommitSeq())
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("CHAMTBN1")) {
		t.Fatalf("tiered snapshot is not a bundle (starts %q)", buf.Bytes()[:8])
	}

	verify := func(t *testing.T, d *DurableIndex) {
		t.Helper()
		if got := d.CommitSeq(); got != asOf {
			t.Fatalf("CommitSeq = %d, want %d", got, asOf)
		}
		if d.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", d.Len(), len(want))
		}
		for k, v := range want {
			if gv, ok := d.Lookup(k); !ok || gv != v {
				t.Fatalf("key %d = %d,%v want %d,true", k, gv, ok, v)
			}
		}
	}

	t.Run("tiered-to-tiered", func(t *testing.T) {
		dst, err := OpenDir(t.TempDir(), tieredOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer dst.Close()
		if err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes()), asOf); err != nil {
			t.Fatal(err)
		}
		verify(t, dst)
		// Durability: the restore's manifest commit must survive reopen.
		dir := dst.dir
		if err := dst.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenDir(dir, tieredOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		verify(t, re)
		// And the restored follower keeps accepting replicated history.
		if err := re.ReplicateBatch(asOf+1, []wal.Record{{Op: wal.OpInsert, Key: 999_999, Val: 1}}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("tiered-to-legacy", func(t *testing.T) {
		dst, err := OpenDir(t.TempDir(), durableOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer dst.Close()
		if err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes()), asOf); err != nil {
			t.Fatal(err)
		}
		verify(t, dst)
	})

	t.Run("legacy-to-tiered", func(t *testing.T) {
		// A legacy primary's structure snapshot lands on a tiered follower.
		leg, err := OpenDir(t.TempDir(), durableOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer leg.Close()
		for i := uint64(1); i <= 100; i++ {
			if err := leg.Insert(i*3, i); err != nil {
				t.Fatal(err)
			}
		}
		var lbuf bytes.Buffer
		lAsOf, _, err := leg.SnapshotAt(&lbuf)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := OpenDir(t.TempDir(), tieredOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer dst.Close()
		if err := dst.RestoreSnapshot(bytes.NewReader(lbuf.Bytes()), lAsOf); err != nil {
			t.Fatal(err)
		}
		if dst.Len() != 100 {
			t.Fatalf("Len = %d, want 100", dst.Len())
		}
		if v, ok := dst.Lookup(30); !ok || v != 10 {
			t.Fatalf("key 30 = %d,%v want 10,true", v, ok)
		}
		if got := dst.CommitSeq(); got != lAsOf {
			t.Fatalf("CommitSeq = %d, want %d", got, lAsOf)
		}
	})
}

// TestTieredRestoreBehindRefused: rewinding a tiered directory is refused —
// stale WAL records above the rewound watermark could replay as phantoms.
func TestTieredRestoreBehindRefused(t *testing.T) {
	src, err := OpenDir(t.TempDir(), tieredOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	asOf, _, err := src.SnapshotAt(&buf)
	if err != nil {
		t.Fatal(err)
	}

	dst, err := OpenDir(t.TempDir(), tieredOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	for i := uint64(0); i < 10; i++ {
		if err := dst.Insert(100+i, i); err != nil {
			t.Fatal(err)
		}
	}
	if dst.CommitSeq() <= asOf {
		t.Fatalf("test setup: dst clock %d not ahead of %d", dst.CommitSeq(), asOf)
	}
	err = dst.RestoreSnapshot(bytes.NewReader(buf.Bytes()), asOf)
	if !errors.Is(err, ErrRestoreBehind) {
		t.Fatalf("backward restore: %v, want ErrRestoreBehind", err)
	}
	// The refusal left local state untouched.
	if v, ok := dst.Lookup(105); !ok || v != 5 {
		t.Fatalf("key 105 = %d,%v after refused restore, want 5,true", v, ok)
	}
}

// TestTieredBundleDecodeRejectsCorruption: bit flips anywhere in a bundle
// are detected (manifest CRC, per-segment CRC, framing, or the live-count
// cross-check) — never silently restored.
func TestTieredBundleDecodeRejectsCorruption(t *testing.T) {
	src, err := OpenDir(t.TempDir(), tieredOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := uint64(0); i < 200; i++ {
		if err := src.Insert(i*11, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, _, err := src.SnapshotAt(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 64; trial++ {
		mut := append([]byte(nil), data...)
		mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
		if bytes.Equal(mut, data) {
			continue
		}
		if _, _, err := readBundleFlat(bytes.NewReader(mut)); err == nil {
			// A flip confined to padding-free regions must fail; locate it
			// for the report.
			i := 0
			for ; i < len(mut) && mut[i] == data[i]; i++ {
			}
			t.Fatalf("trial %d: bit flip at offset %d decoded cleanly", trial, i)
		}
	}
}

// TestTieredSegmentMetasSorted pins the published read order: newest first
// by sequence watermark, ID breaking ties, so shadowing is well defined.
func TestTieredSegmentMetasSorted(t *testing.T) {
	d, err := OpenDir(t.TempDir(), tieredOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for round := uint64(0); round < 3; round++ {
		for i := uint64(0); i < 10; i++ {
			key := i*5 + round // overlapping ranges across rounds
			if _, ok := d.Lookup(key); !ok {
				if err := d.Insert(key, round); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	metas := d.tier.segs.Load().metas()
	if !sort.SliceIsSorted(metas, func(i, j int) bool {
		if metas[i].Seq != metas[j].Seq {
			return metas[i].Seq > metas[j].Seq
		}
		return metas[i].ID > metas[j].ID
	}) {
		t.Fatalf("segment set not newest-first: %+v", metas)
	}
}
