// Command chameleon-datagen emits the synthetic evaluation datasets in SOSD
// binary format (little-endian uint64 count + keys), the interchange format
// the paper's benchmark suite uses. The files can be fed to external tools
// or read back with dataset.ReadSOSDFile.
//
// Usage:
//
//	chameleon-datagen -out ./data -n 1000000            # all four datasets
//	chameleon-datagen -out ./data -n 1000000 -name FACE # one dataset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chameleon/internal/dataset"
)

func main() {
	var (
		out  = flag.String("out", "data", "output directory")
		n    = flag.Int("n", 1_000_000, "keys per dataset")
		name = flag.String("name", "", "single dataset (UDEN/OSMC/LOGN/FACE); empty = all")
		seed = flag.Uint64("seed", 42, "generator seed")
	)
	flag.Parse()

	names := dataset.Names
	if *name != "" {
		names = []string{strings.ToUpper(*name)}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, ds := range names {
		keys := dataset.Generate(ds, *n, *seed)
		lsn := dataset.LocalSkewness(keys)
		path := filepath.Join(*out, fmt.Sprintf("%s_%d.sosd", strings.ToLower(ds), *n))
		if err := dataset.WriteSOSDFile(path, keys); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d keys, lsn=%.4f → %s\n", ds, len(keys), lsn, path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chameleon-datagen:", err)
	os.Exit(1)
}
