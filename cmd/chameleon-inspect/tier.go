package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"chameleon/internal/faultfs"
	"chameleon/internal/segment"
)

// Tiered-directory inspection: dump the tier manifest and every segment's
// metadata, and optionally re-verify each file (full CRC pass plus a probe
// of the learned model against the on-disk keys).

// inspectTierDir prints the tier state of dir. A sharded root (shard-NNNN
// subdirectories) recurses into every shard. Returns false if dir holds no
// tier manifest anywhere.
func inspectTierDir(dir string, check bool) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fatal(err)
	}
	var shardDirs []string
	for _, e := range entries {
		if e.IsDir() && len(e.Name()) == 10 && e.Name()[:6] == "shard-" {
			shardDirs = append(shardDirs, e.Name())
		}
	}
	if len(shardDirs) > 0 {
		sort.Strings(shardDirs)
		any := false
		for _, sd := range shardDirs {
			fmt.Printf("== %s ==\n", sd)
			if inspectOneTierDir(filepath.Join(dir, sd), check) {
				any = true
			}
			fmt.Println()
		}
		return any
	}
	return inspectOneTierDir(dir, check)
}

func inspectOneTierDir(dir string, check bool) bool {
	man, err := segment.LoadManifest(faultfs.OS, dir)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", dir, err))
	}
	if man == nil {
		fmt.Printf("%s: no tier manifest (legacy checkpoint directory)\n", dir)
		return false
	}
	var total int64
	var live, count uint64
	for _, m := range man.Segments {
		total += m.Bytes
		live += m.Live
		count += m.Count
	}
	fmt.Printf("manifest:     gen %d\n", man.Gen)
	fmt.Printf("flushed seq:  %d (WAL records above this are the unflushed delta)\n", man.FlushedSeq)
	fmt.Printf("live keys:    %d as of the watermark\n", man.LiveCount)
	fmt.Printf("next seg id:  %d\n", man.NextID)
	fmt.Printf("segments:     %d (%d entries, %d live, %d tombstones, %.2f MB)\n",
		len(man.Segments), count, live, count-live, float64(total)/(1<<20))
	if len(man.Segments) == 0 {
		return true
	}
	fmt.Printf("\n%16s %5s %10s %10s %20s %20s %12s %5s %6s %10s  %s\n",
		"ID", "LVL", "COUNT", "LIVE", "MINKEY", "MAXKEY", "SEQ", "EPS", "MODEL", "BYTES", "STATUS")
	metas := append([]segment.Meta(nil), man.Segments...)
	sort.Slice(metas, func(i, j int) bool {
		if metas[i].Seq != metas[j].Seq {
			return metas[i].Seq > metas[j].Seq
		}
		return metas[i].ID > metas[j].ID
	})
	for i := range metas {
		m := metas[i]
		fmt.Printf("%16d %5d %10d %10d %20d %20d %12d %5d %6d %10d  %s\n",
			m.ID, m.Level, m.Count, m.Live, m.MinKey, m.MaxKey, m.Seq, m.Eps, m.ModelPieces,
			m.Bytes, segStatus(dir, &m, check))
	}
	return true
}

// segStatus opens the named segment against its manifest record: "ok" means
// the full-file CRC and header cross-check passed; with check it also probes
// the learned model against every on-disk key and reports the worst rank
// error against the promised ε.
func segStatus(dir string, m *segment.Meta, check bool) string {
	r, err := segment.Open(faultfs.OS, filepath.Join(dir, segment.FileName(m.ID)), m)
	if err != nil {
		if os.IsNotExist(err) {
			return "MISSING"
		}
		return fmt.Sprintf("CORRUPT: %v", err)
	}
	defer r.Close() //nolint:errcheck
	if !check {
		return "ok"
	}
	worst, err := r.ModelMaxError()
	if err != nil {
		return fmt.Sprintf("MODEL-PROBE-FAILED: %v", err)
	}
	if worst > m.Eps {
		return fmt.Sprintf("MODEL-ERROR %d > eps %d", worst, m.Eps)
	}
	return fmt.Sprintf("ok (model max err %d <= eps %d)", worst, m.Eps)
}

// inspectSegFile dumps one segment file with no manifest cross-check (the
// path for quarantined or orphaned files).
func inspectSegFile(path string) {
	r, err := segment.Open(faultfs.OS, path, nil)
	if err != nil {
		fatal(err)
	}
	defer r.Close() //nolint:errcheck
	m := r.Meta()
	if id, ok := segment.ParseFileName(filepath.Base(path)); ok {
		m.ID = id
	}
	fmt.Printf("file:         %s\n", path)
	fmt.Printf("id:           %d\n", m.ID)
	fmt.Printf("level:        %d\n", m.Level)
	fmt.Printf("entries:      %d (%d live, %d tombstones)\n", m.Count, m.Live, m.Count-m.Live)
	fmt.Printf("key range:    [%d, %d]\n", m.MinKey, m.MaxKey)
	fmt.Printf("seq:          %d\n", m.Seq)
	fmt.Printf("bytes:        %d\n", m.Bytes)
	fmt.Printf("model:        %d pieces (%d bytes), promised eps %d\n",
		m.ModelPieces, m.ModelPieces*24, m.Eps)
	worst, err := r.ModelMaxError()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model error:  max %d (CRC and key order verified at open)\n", worst)
}
