// Command chameleon-inspect loads an index saved with chameleon.Index.Save
// (or builds one from a SOSD key file) and prints its structural profile:
// the Table V metrics, size breakdown, height, and local skewness. It is the
// operational "what does my index look like" tool.
//
// With -dir it instead inspects a tiered durable directory: the tier
// manifest (generation, flushed watermark, live count) and every segment's
// metadata — level, key range, sequence watermark, learned-model size and
// error bound, and per-file integrity status. A sharded root recurses into
// every shard. -check additionally re-verifies each segment end to end
// (full-file CRC plus a probe of the model against the on-disk keys); -seg
// dumps one segment file with no manifest cross-check.
//
// Usage:
//
//	chameleon-inspect -index idx.cham
//	chameleon-inspect -sosd data/face_1000000.sosd          # build then inspect
//	chameleon-inspect -sosd data/face_1000000.sosd -save idx.cham
//	chameleon-inspect -dir /data/chameleon                  # tier manifest + segments
//	chameleon-inspect -dir /data/chameleon -check           # + CRC/model verification
//	chameleon-inspect -seg /data/chameleon/seg-0000000000000003.seg
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chameleon"
	"chameleon/internal/dataset"
)

func main() {
	var (
		indexPath = flag.String("index", "", "saved index file to load")
		sosdPath  = flag.String("sosd", "", "SOSD key file to bulk load")
		limit     = flag.Int("limit", 0, "max keys to read from the SOSD file (0 = all)")
		savePath  = flag.String("save", "", "write the (built or loaded) index here")
		seed      = flag.Uint64("seed", 1, "construction seed")
		dirPath   = flag.String("dir", "", "tiered durable directory: dump the tier manifest and segment metadata")
		segPath   = flag.String("seg", "", "single segment file: dump its header and model (no manifest cross-check)")
		check     = flag.Bool("check", false, "with -dir: re-verify every segment (CRC pass + model probe against on-disk keys)")
	)
	flag.Parse()

	if *segPath != "" {
		inspectSegFile(*segPath)
		return
	}
	if *dirPath != "" {
		if !inspectTierDir(*dirPath, *check) {
			os.Exit(1)
		}
		return
	}

	var ix *chameleon.Index
	switch {
	case *indexPath != "":
		start := time.Now()
		loaded, err := chameleon.Load(*indexPath, chameleon.Options{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		ix = loaded
		fmt.Printf("loaded %s in %v\n", *indexPath, time.Since(start).Round(time.Millisecond))
	case *sosdPath != "":
		keys, err := dataset.ReadSOSDFile(*sosdPath, *limit)
		if err != nil {
			fatal(err)
		}
		ix = chameleon.New(chameleon.Options{Seed: *seed})
		start := time.Now()
		if err := ix.BulkLoad(keys, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("built from %s (%d keys) in %v\n",
			*sosdPath, len(keys), time.Since(start).Round(time.Millisecond))
	default:
		fmt.Fprintln(os.Stderr, "need -index or -sosd; see -h")
		os.Exit(2)
	}
	defer ix.Close()

	s := ix.Stats()
	fmt.Printf("\nkeys:            %d\n", ix.Len())
	fmt.Printf("local skewness:  %.4f (π/4=%.4f uniform … π/2=%.4f extreme)\n",
		ix.LocalSkewness(), 0.7854, 1.5708)
	fmt.Printf("height:          max %d, avg %.2f\n", s.MaxHeight, s.AvgHeight)
	fmt.Printf("leaf error:      max %d, avg %.2f (EBH probe distance)\n", s.MaxError, s.AvgError)
	fmt.Printf("nodes:           %d\n", s.Nodes)
	fmt.Printf("size:            %.2f MB (%.1f bytes/key)\n",
		float64(ix.Bytes())/(1<<20), float64(ix.Bytes())/float64(max(1, ix.Len())))

	if *savePath != "" {
		if err := ix.Save(*savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("saved to %s\n", *savePath)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chameleon-inspect:", err)
	os.Exit(1)
}
