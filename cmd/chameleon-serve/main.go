// Command chameleon-serve serves a durable chameleon index over TCP with
// the wire protocol (see DESIGN.md §10). It opens (or creates) the index
// directory, listens, and drains gracefully on SIGINT/SIGTERM: stop
// accepting, finish in-flight requests, checkpoint, close. A client that
// received an ack before the signal finds its write after restart.
//
// Usage:
//
//	chameleon-serve -dir /var/lib/chameleon            # serve on :9431
//	chameleon-serve -dir d -shards 4                   # range-partitioned, one WAL per shard
//	chameleon-serve -dir d -sync interval -sync-every 5ms
//	chameleon-serve -stats -addr localhost:9431        # one-line health JSON
//
// A directory that already holds a shard manifest reopens sharded no matter
// what -shards says (the stored layout owns the data). -stats exits 0 only
// for a reachable, non-draining server; an unreachable or draining one gets
// a one-line error on stderr and a non-zero exit, so probes can alarm on the
// exit code alone.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chameleon"
	"chameleon/internal/client"
	"chameleon/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":9431", "listen address (or target for -stats)")
		dir          = flag.String("dir", "", "index directory (created if missing)")
		sync         = flag.String("sync", "everyop", "WAL sync policy: everyop | interval | none")
		syncEvery    = flag.Duration("sync-every", 10*time.Millisecond, "fsync interval for -sync interval")
		maxPending   = flag.Int("max-pending", 4096, "admission bound: max queued mutations (per shard when sharded)")
		shards       = flag.Int("shards", 0, "range partitions, each with its own WAL and commit queue (0 = unsharded; ignored when the directory already has a shard manifest)")
		blockOnFull  = flag.Bool("block-on-full", true, "block writers at the bound instead of shedding with overloaded")
		maxConns     = flag.Int("max-conns", 256, "max concurrent connections")
		pipeline     = flag.Int("pipeline", 128, "max in-flight requests per connection")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM")
		stats        = flag.Bool("stats", false, "dial -addr, print one-line STATS JSON, exit")
	)
	flag.Parse()

	if *stats {
		os.Exit(printStats(*addr))
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "chameleon-serve: -dir is required")
		os.Exit(2)
	}
	dopts := chameleon.DirOptions{
		SyncEvery:   *syncEvery,
		MaxPending:  *maxPending,
		BlockOnFull: *blockOnFull,
	}
	switch *sync {
	case "everyop":
		dopts.Sync = chameleon.SyncEveryOp
	case "interval":
		dopts.Sync = chameleon.SyncInterval
	case "none":
		dopts.Sync = chameleon.SyncNone
	default:
		fmt.Fprintf(os.Stderr, "chameleon-serve: unknown -sync %q\n", *sync)
		os.Exit(2)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "chameleon-serve: %v\n", err)
		os.Exit(1)
	}
	var ix server.Index
	layout := "unsharded"
	if *shards > 1 || chameleon.IsShardedDir(*dir) {
		n := *shards
		if n <= 1 {
			n = 0 // manifest present: the stored shard count wins anyway
		}
		si, err := chameleon.OpenShardedDir(*dir, chameleon.ShardDirOptions{DirOptions: dopts, Shards: n})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chameleon-serve: open %s: %v\n", *dir, err)
			os.Exit(1)
		}
		ix = si
		layout = fmt.Sprintf("%d shards", si.Shards())
	} else {
		di, err := chameleon.OpenDir(*dir, dopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chameleon-serve: open %s: %v\n", *dir, err)
			os.Exit(1)
		}
		ix = di
	}
	srv := server.New(ix, server.Options{
		MaxConns:    *maxConns,
		MaxPipeline: *pipeline,
		OwnsIndex:   true, // Shutdown checkpoints and closes the index
	})
	if err := srv.Listen(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "chameleon-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("chameleon-serve: %d keys from %s (%s), listening on %s (sync=%s)\n",
		ix.Len(), *dir, layout, srv.Addr(), *sync)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	select {
	case sig := <-sigs:
		fmt.Printf("chameleon-serve: %v — draining (budget %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "chameleon-serve: drain: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("chameleon-serve: drained, checkpointed, closed")
	case err := <-errc:
		if err != nil {
			fmt.Fprintf(os.Stderr, "chameleon-serve: %v\n", err)
			os.Exit(1)
		}
	}
}

// printStats dials addr and dumps the server's STATS JSON as one line — the
// operator's health probe, sharing its schema with BENCH_serve.json. The
// exit code is the probe's contract: 0 means reachable and serving; an
// unreachable or draining server gets exactly one line on stderr and a
// non-zero exit, so callers alarm on the code without parsing anything.
func printStats(addr string) int {
	c, err := client.Dial(addr, client.Options{DialTimeout: 3 * time.Second})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chameleon-serve -stats: %s unreachable: %s\n", addr, oneLine(err))
		return 1
	}
	defer c.Close() //nolint:errcheck
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	stats, raw, err := c.Stats(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chameleon-serve -stats: %s unreachable: %s\n", addr, oneLine(err))
		return 1
	}
	fmt.Println(string(raw))
	if stats.Draining {
		fmt.Fprintf(os.Stderr, "chameleon-serve -stats: %s is draining\n", addr)
		return 1
	}
	return 0
}

// oneLine flattens an error message so the probe's stderr is always exactly
// one line, whatever the client error path produced.
func oneLine(err error) string {
	return strings.Join(strings.Fields(err.Error()), " ")
}
