// Command chameleon-serve serves a durable chameleon index over TCP with
// the wire protocol (see DESIGN.md §10). It opens (or creates) the index
// directory, listens, and drains gracefully on SIGINT/SIGTERM: stop
// accepting, finish in-flight requests, checkpoint, close. A client that
// received an ack before the signal finds its write after restart.
//
// Usage:
//
//	chameleon-serve -dir /var/lib/chameleon            # serve on :9431
//	chameleon-serve -dir d -shards 4                   # range-partitioned, one WAL per shard
//	chameleon-serve -dir d -sync interval -sync-every 5ms
//	chameleon-serve -dir d1 -repl                      # primary: serve follower pulls
//	chameleon-serve -dir d2 -replica-of primary:9431   # follower (read-only)
//	chameleon-serve -stats -addr localhost:9431        # one-line health JSON
//
// A directory that already holds a shard manifest reopens sharded no matter
// what -shards says (the stored layout owns the data). -stats exits 0 only
// for a reachable, non-draining server; an unreachable or draining one gets
// a one-line error on stderr and a non-zero exit, so probes can alarm on the
// exit code alone.
//
// Replication (DESIGN.md §12): -replica-of starts the node as a follower of
// the given primary; it rejects writes and serves reads while pulling the
// primary's commit stream. A primary must opt in with -repl (implied by
// -repl-semisync) to accept follower pulls; -repl-semisync makes each write
// wait for a follower ack (bounded by -repl-ack-timeout). Sharded layouts
// replicate too (DESIGN.md §14): a sharded node runs one replication stream
// per shard, and its follower must be started with the same shard count.
//
// Failover (DESIGN.md §14): -failover-auto runs the failure detector beside
// a follower — when the primary is both silent on the pull stream and
// unresponsive to direct probes, the follower fences and promotes itself.
// SIGUSR1 (or the wire PROMOTE op) remains the manual path. A node that was
// fenced stays fenced across restarts (the repl.meta sidecar).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chameleon"
	"chameleon/internal/client"
	"chameleon/internal/failover"
	"chameleon/internal/repl"
	"chameleon/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":9431", "listen address (or target for -stats)")
		dir          = flag.String("dir", "", "index directory (created if missing)")
		sync         = flag.String("sync", "everyop", "WAL sync policy: everyop | interval | none")
		syncEvery    = flag.Duration("sync-every", 10*time.Millisecond, "fsync interval for -sync interval")
		maxPending   = flag.Int("max-pending", 4096, "admission bound: max queued mutations (per shard when sharded)")
		shards       = flag.Int("shards", 0, "range partitions, each with its own WAL and commit queue (0 = unsharded; ignored when the directory already has a shard manifest)")
		blockOnFull  = flag.Bool("block-on-full", true, "block writers at the bound instead of shedding with overloaded")
		maxConns     = flag.Int("max-conns", 256, "max concurrent connections")
		pipeline     = flag.Int("pipeline", 128, "max in-flight requests per connection")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM")
		stats        = flag.Bool("stats", false, "dial -addr, print one-line STATS JSON, exit")
		replEnable   = flag.Bool("repl", false, "enable replication as primary (serve follower pulls); implied by -replica-of and -repl-semisync")
		replicaOf    = flag.String("replica-of", "", "follow this primary address (read-only until promoted via -failover-auto, SIGUSR1, or the wire PROMOTE op)")
		semiSync     = flag.Bool("repl-semisync", false, "primary: block each write's ack until a follower acknowledged it")
		ackTimeout   = flag.Duration("repl-ack-timeout", 2*time.Second, "semi-sync wait bound; on expiry the write errors replica-lagging but stays locally durable")
		autoFailover = flag.Bool("failover-auto", false, "follower: run the failure detector and self-promote when the primary is dead")
		suspectAfter = flag.Duration("failover-suspect", 2*time.Second, "pull-stall threshold before the detector starts probing the primary")
		probeEvery   = flag.Duration("failover-probe-interval", 500*time.Millisecond, "failure-detector probe interval")
		probeCount   = flag.Int("failover-probes", 3, "consecutive failed probes (while stalled) that declare the primary dead")
		foRank       = flag.Int("failover-rank", 0, "this detector's priority among detector-enabled followers (each must be distinct; rank claims epochs ≡ rank mod group so concurrent promotions can never collide)")
		foPeers      = flag.String("failover-peers", "", "comma-separated addresses of the OTHER detector-enabled followers (checked before promoting, fenced after)")
		tiered       = flag.Bool("tier", false, "tiered disk-resident storage: background flush to learned-index segments + leveled compaction instead of monolithic checkpoints (sticky: a directory with a tier manifest always reopens tiered)")
		memtableMB   = flag.Int("tier-memtable-mb", 4, "tiered mode: memtable budget in MiB before a background flush is triggered")
		segmentEps   = flag.Int("tier-eps", 0, "tiered mode: segment model error bound ε (0 = default 32); a cold read preads at most 2ε+1 keys")
		compactL0    = flag.Int("tier-compact-l0", 0, "tiered mode: L0 segment count that triggers compaction into L1 (0 = default 4)")
	)
	flag.Parse()

	if *stats {
		os.Exit(printStats(*addr))
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "chameleon-serve: -dir is required")
		os.Exit(2)
	}
	dopts := chameleon.DirOptions{
		SyncEvery:     *syncEvery,
		MaxPending:    *maxPending,
		BlockOnFull:   *blockOnFull,
		Tiered:        *tiered,
		MemtableBytes: int64(*memtableMB) << 20,
		SegmentEps:    *segmentEps,
		CompactL0:     *compactL0,
	}
	switch *sync {
	case "everyop":
		dopts.Sync = chameleon.SyncEveryOp
	case "interval":
		dopts.Sync = chameleon.SyncInterval
	case "none":
		dopts.Sync = chameleon.SyncNone
	default:
		fmt.Fprintf(os.Stderr, "chameleon-serve: unknown -sync %q\n", *sync)
		os.Exit(2)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "chameleon-serve: %v\n", err)
		os.Exit(1)
	}
	replOn := *replEnable || *replicaOf != "" || *semiSync
	if *autoFailover && *replicaOf == "" {
		fmt.Fprintln(os.Stderr, "chameleon-serve: -failover-auto needs -replica-of (only a follower can fail over)")
		os.Exit(2)
	}

	var ix server.Index
	layout := "unsharded"
	if *shards > 1 || chameleon.IsShardedDir(*dir) {
		n := *shards
		if n <= 1 {
			n = 0 // manifest present: the stored shard count wins anyway
		}
		si, err := chameleon.OpenShardedDir(*dir, chameleon.ShardDirOptions{DirOptions: dopts, Shards: n})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chameleon-serve: open %s: %v\n", *dir, err)
			os.Exit(1)
		}
		ix = si
		layout = fmt.Sprintf("%d shards", si.Shards())
	} else {
		di, err := chameleon.OpenDir(*dir, dopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chameleon-serve: open %s: %v\n", *dir, err)
			os.Exit(1)
		}
		ix = di
	}

	var node *repl.Node
	if replOn {
		ropts := repl.Options{
			ReplicaOf:  *replicaOf,
			SemiSync:   *semiSync,
			AckTimeout: *ackTimeout,
			Logf: func(format string, args ...any) {
				fmt.Printf("chameleon-serve: "+format+"\n", args...)
			},
		}
		switch ci := ix.(type) {
		case *chameleon.ShardedIndex:
			node = repl.NewSharded(ci, ropts)
		case *chameleon.DurableIndex:
			node = repl.New(ci, ropts)
		}
		role, epoch := node.Role()
		if *replicaOf != "" {
			layout = fmt.Sprintf("%s (%s) of %s, epoch %d", role, layout, *replicaOf, epoch)
		} else {
			layout = fmt.Sprintf("%s (%s), epoch %d", role, layout, epoch)
		}
	}
	var det *failover.Detector
	if *autoFailover {
		var peers []string
		for _, p := range strings.Split(*foPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		det = failover.Start(node, failover.Options{
			SuspectAfter:  *suspectAfter,
			ProbeInterval: *probeEvery,
			Probes:        *probeCount,
			Rank:          *foRank,
			Peers:         peers,
			Logf: func(format string, args ...any) {
				fmt.Printf("chameleon-serve: "+format+"\n", args...)
			},
		})
	}
	srv := server.New(ix, server.Options{
		MaxConns:    *maxConns,
		MaxPipeline: *pipeline,
		OwnsIndex:   true, // Shutdown checkpoints and closes the index
		Repl:        node,
	})
	if err := srv.Listen(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "chameleon-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("chameleon-serve: %d keys from %s (%s), listening on %s (sync=%s)\n",
		ix.Len(), *dir, layout, srv.Addr(), *sync)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	for {
		select {
		case sig := <-sigs:
			if sig == syscall.SIGUSR1 {
				// Operator promotion. Safe to repeat: promoting a primary is
				// a no-op, and a fenced node refuses with an explicit error.
				if node == nil {
					fmt.Println("chameleon-serve: SIGUSR1 ignored (replication not enabled)")
					continue
				}
				epoch, err := node.Promote()
				if err != nil {
					fmt.Fprintf(os.Stderr, "chameleon-serve: promote: %v\n", err)
					continue
				}
				fmt.Printf("chameleon-serve: promoted to primary, epoch %d\n", epoch)
				continue
			}
			fmt.Printf("chameleon-serve: %v — draining (budget %s)\n", sig, *drainTimeout)
			if det != nil {
				det.Stop()
			}
			if node != nil {
				node.Close() // stop pulling/acking before the index goes away
			}
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "chameleon-serve: drain: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("chameleon-serve: drained, checkpointed, closed")
			return
		case err := <-errc:
			if err != nil {
				fmt.Fprintf(os.Stderr, "chameleon-serve: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
}

// printStats dials addr and dumps the server's STATS JSON as one line — the
// operator's health probe, sharing its schema with BENCH_serve.json. The
// exit code is the probe's contract: 0 means reachable and serving; an
// unreachable or draining server gets exactly one line on stderr and a
// non-zero exit, so callers alarm on the code without parsing anything.
func printStats(addr string) int {
	c, err := client.Dial(addr, client.Options{DialTimeout: 3 * time.Second})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chameleon-serve -stats: %s unreachable: %s\n", addr, oneLine(err))
		return 1
	}
	defer c.Close() //nolint:errcheck
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	stats, raw, err := c.Stats(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chameleon-serve -stats: %s unreachable: %s\n", addr, oneLine(err))
		return 1
	}
	fmt.Println(string(raw))
	if stats.Draining {
		fmt.Fprintf(os.Stderr, "chameleon-serve -stats: %s is draining\n", addr)
		return 1
	}
	return 0
}

// oneLine flattens an error message so the probe's stderr is always exactly
// one line, whatever the client error path produced.
func oneLine(err error) string {
	return strings.Join(strings.Fields(err.Error()), " ")
}
