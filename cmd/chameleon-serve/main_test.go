package main

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"strings"
	"testing"

	"chameleon/internal/wire"
)

// captureStderr runs fn with os.Stderr redirected to a pipe and returns what
// fn wrote to it.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	fn()
	w.Close() //nolint:errcheck
	var buf bytes.Buffer
	buf.ReadFrom(r) //nolint:errcheck
	r.Close()       //nolint:errcheck
	return buf.String()
}

// TestPrintStatsUnreachable: the probe contract — an unreachable server must
// produce a non-zero exit and exactly one line on stderr, so callers can
// alarm on the code without parsing anything.
func TestPrintStatsUnreachable(t *testing.T) {
	// Grab a port, then close it: nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck

	var code int
	out := captureStderr(t, func() { code = printStats(addr) })
	if code == 0 {
		t.Fatal("printStats on unreachable server returned 0")
	}
	if n := strings.Count(strings.TrimRight(out, "\n"), "\n") + 1; out == "" || n != 1 {
		t.Fatalf("stderr not exactly one line:\n%q", out)
	}
	if !strings.Contains(out, "unreachable") {
		t.Fatalf("stderr does not say unreachable: %q", out)
	}
}

// fakeStatsServer answers the wire protocol with a canned STATS reply (and OK
// for the ping Dial sends).
func fakeStatsServer(t *testing.T, reply wire.StatsReply) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() }) //nolint:errcheck
	doc, err := json.Marshal(reply)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close() //nolint:errcheck
				for {
					payload, err := wire.ReadFrame(nc)
					if err != nil {
						return
					}
					req, err := wire.DecodeRequest(payload)
					if err != nil {
						return
					}
					res := &wire.Response{ID: req.ID, Op: req.Op, OK: true}
					if req.Op == wire.OpStats {
						res.Stats = doc
					}
					if _, err := nc.Write(wire.AppendResponse(nil, res)); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestPrintStatsDraining: a reachable server that reports draining still gets
// its JSON printed, but the exit code must be non-zero — a draining server is
// about to stop serving, and the probe's job is to say so.
func TestPrintStatsDraining(t *testing.T) {
	addr := fakeStatsServer(t, wire.StatsReply{State: "ok", Draining: true})
	var code int
	out := captureStderr(t, func() { code = printStats(addr) })
	if code == 0 {
		t.Fatal("printStats on draining server returned 0")
	}
	if !strings.Contains(out, "draining") {
		t.Fatalf("stderr does not say draining: %q", out)
	}
}

// TestPrintStatsHealthy: the zero exit is reserved for reachable and serving.
func TestPrintStatsHealthy(t *testing.T) {
	addr := fakeStatsServer(t, wire.StatsReply{State: "ok"})
	if code := printStats(addr); code != 0 {
		t.Fatalf("printStats on healthy server returned %d", code)
	}
}
