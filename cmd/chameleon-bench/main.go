// Command chameleon-bench regenerates the paper's evaluation (Section VI):
// every figure and table has an experiment ID, and each run prints aligned
// text tables whose rows correspond to the paper's plotted series.
//
// Usage:
//
//	chameleon-bench -exp all                 # everything (slow)
//	chameleon-bench -exp fig8 -n 1000000     # one experiment at 1M keys
//	chameleon-bench -list                    # enumerate experiment IDs
//
// The paper evaluates 50–200M keys on a 128 GB machine; defaults here are
// laptop scale. Latency ratios between the indexes — not absolute numbers —
// are the reproduced quantity (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"chameleon/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID (fig1, fig8..fig15, table5, conc, durability, scaling, overload, serve, shard, repl, failover, read, tier) or 'all'")
		n       = flag.Int("n", 400_000, "dataset cardinality")
		ops     = flag.Int("ops", 200_000, "mixed-workload operation count")
		seed    = flag.Uint64("seed", 42, "generator seed")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		readers = flag.String("readers", "1,2,4,8", "conc: reader-count scaling curve")
		writers = flag.Int("writers", 1, "conc: concurrent writer goroutines")
		dur     = flag.Duration("dur", 500*time.Millisecond, "conc: measurement window per point")
	)
	flag.Parse()

	curve, err := parseCurve(*readers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -readers: %v\n", err)
		os.Exit(2)
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments {
			fmt.Printf("  %-8s %s\n", e.ID, e.Descr)
		}
		if !*list {
			os.Exit(2)
		}
		return
	}

	cfg := harness.Config{
		N: *n, Ops: *ops, Seed: *seed, Out: os.Stdout,
		Conc: harness.ConcurrencyConfig{Readers: curve, Writers: *writers, Duration: *dur},
	}
	ran := 0
	for _, e := range harness.Experiments {
		if *exp != "all" && !strings.EqualFold(e.ID, *exp) {
			continue
		}
		fmt.Printf("\n### %s — %s (n=%d, ops=%d, seed=%d)\n", e.ID, e.Descr, *n, *ops, *seed)
		start := time.Now()
		for _, tb := range e.Run(cfg) {
			if *csv {
				tb.FprintCSV(os.Stdout)
			} else {
				tb.Fprint(os.Stdout)
			}
		}
		fmt.Printf("\n[%s completed in %.1fs]\n", e.ID, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
}

// parseCurve parses a comma-separated list of positive goroutine counts.
func parseCurve(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("%q is not a positive count", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty curve")
	}
	return out, nil
}
