// Command chameleon-bench regenerates the paper's evaluation (Section VI):
// every figure and table has an experiment ID, and each run prints aligned
// text tables whose rows correspond to the paper's plotted series.
//
// Usage:
//
//	chameleon-bench -exp all                 # everything (slow)
//	chameleon-bench -exp fig8 -n 1000000     # one experiment at 1M keys
//	chameleon-bench -list                    # enumerate experiment IDs
//
// The paper evaluates 50–200M keys on a 128 GB machine; defaults here are
// laptop scale. Latency ratios between the indexes — not absolute numbers —
// are the reproduced quantity (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chameleon/internal/harness"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment ID (fig1, fig8..fig15, table5) or 'all'")
		n    = flag.Int("n", 400_000, "dataset cardinality")
		ops  = flag.Int("ops", 200_000, "mixed-workload operation count")
		seed = flag.Uint64("seed", 42, "generator seed")
		list = flag.Bool("list", false, "list experiment IDs and exit")
		csv  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments {
			fmt.Printf("  %-8s %s\n", e.ID, e.Descr)
		}
		if !*list {
			os.Exit(2)
		}
		return
	}

	cfg := harness.Config{N: *n, Ops: *ops, Seed: *seed, Out: os.Stdout}
	ran := 0
	for _, e := range harness.Experiments {
		if *exp != "all" && !strings.EqualFold(e.ID, *exp) {
			continue
		}
		fmt.Printf("\n### %s — %s (n=%d, ops=%d, seed=%d)\n", e.ID, e.Descr, *n, *ops, *seed)
		start := time.Now()
		for _, tb := range e.Run(cfg) {
			if *csv {
				tb.FprintCSV(os.Stdout)
			} else {
				tb.Fprint(os.Stdout)
			}
		}
		fmt.Printf("\n[%s completed in %.1fs]\n", e.ID, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
}
