// Command chameleon-train runs Algorithm 2 ("Train Chameleon"): it trains
// the TSMDP and DARE agents over randomized synthetic datasets and saves
// them for use via chameleon.LoadAgents / the -agents flags of downstream
// tools. The paper trains on a GPU; this pure-Go run is laptop scale — the
// deterministic cost-model policies remain the reproducible default, and
// trained agents are the paper-faithful alternative.
//
// Usage:
//
//	chameleon-train -out ./agents -episodes 8 -dataset-size 50000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"chameleon/internal/core"
	"chameleon/internal/dataset"
	"chameleon/internal/rl"
)

func main() {
	var (
		out      = flag.String("out", "agents", "output directory for tsmdp.gob / dare.gob")
		episodes = flag.Int("episodes", 4, "episodes per exploration-rate step (K)")
		dsSize   = flag.Int("dataset-size", 50_000, "keys per training dataset")
		epsilon  = flag.Float64("epsilon", 0.2, "exploration termination probability ε")
		height   = flag.Int("height", 3, "index height h the DARE critic is shaped for")
		bt       = flag.Int("bt", 64, "TSMDP PDF bucket size b_T (paper: 256)")
		bd       = flag.Int("bd", 256, "DARE PDF bucket size b_D (paper: 16384)")
		l        = flag.Int("l", 64, "DARE parameter-matrix width L (paper: 256)")
		seed     = flag.Uint64("seed", 7, "training seed")
		verbose  = flag.Bool("v", false, "log per-episode progress")
		eval     = flag.Bool("eval", false, "evaluate the trained agents on a held-out dataset")
	)
	flag.Parse()

	cfg := rl.DefaultTrainConfig()
	cfg.EpisodesPer = *episodes
	cfg.DatasetSize = *dsSize
	cfg.Epsilon = *epsilon
	cfg.Height = *height
	cfg.Seed = *seed
	cfg.TSMDP.Env.BT = *bt
	cfg.DARE.BD = *bd
	cfg.DARE.L = *l
	if *verbose {
		cfg.Log = os.Stderr
	}

	fmt.Printf("training: K=%d episodes/step, |D|=%d, ε=%.3f, h=%d, b_T=%d, b_D=%d, L=%d\n",
		*episodes, *dsSize, *epsilon, *height, *bt, *bd, *l)
	start := time.Now()
	ts, da := rl.Train(cfg)
	fmt.Printf("trained in %.1fs\n", time.Since(start).Seconds())

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	tsPath := filepath.Join(*out, "tsmdp.gob")
	daPath := filepath.Join(*out, "dare.gob")
	if err := rl.SaveTSMDP(ts, tsPath); err != nil {
		fatal(err)
	}
	if err := rl.SaveDARE(da, daPath); err != nil {
		fatal(err)
	}
	fmt.Printf("saved %s and %s\n", tsPath, daPath)

	if *eval {
		evaluate(ts, da)
	}
}

// evaluate builds a held-out skewed dataset with the trained agents and with
// the deterministic cost-model policies, and compares the realized
// structures under the analytic cost model — a quick sanity check that
// training produced usable agents.
func evaluate(ts *rl.TSMDP, da *rl.DARE) {
	keys := dataset.Generate(dataset.FACE, 100_000, 999) // held-out seed
	env := rl.DefaultEnv()

	score := func(name string, dare rl.DAREPolicy, policy rl.FanoutPolicy) {
		ix := core.New(core.Config{Name: name, Dare: dare, Policy: policy})
		start := time.Now()
		if err := ix.BulkLoad(keys, nil); err != nil {
			fatal(err)
		}
		s := ix.Stats()
		fmt.Printf("  %-12s build %6.0fms  height %d  avgErr %.3f  nodes %d  %.1f B/key\n",
			name, float64(time.Since(start).Microseconds())/1000,
			s.MaxHeight, s.AvgError, s.Nodes, float64(ix.Bytes())/float64(ix.Len()))
	}
	fmt.Println("held-out evaluation (FACE, 100k keys):")
	score("trained", da, ts)
	score("cost-model", rl.NewCostDARE(rl.DefaultDAREConfig()), rl.NewCostPolicy(env))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chameleon-train:", err)
	os.Exit(1)
}
